package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/locks"
)

// chaosPlan returns a small but adversarial plan: a tiny TargetLen forces
// tree growth (TreeGrow point), memory-safe sets drive hazard scans
// (HazardScan point), a nonzero batch exercises the pool (PoolHandoff
// point), and trylocks everywhere hit the TryLock point.
func chaosPlan(seed uint64) ChaosPlan {
	return ChaosPlan{
		Seed:        seed,
		Rounds:      3,
		Producers:   4,
		Consumers:   4,
		OpsPerRound: 1500,
		Faults:      fault.DefaultPlan(),
		Queue: core.Config{
			Batch:     8,
			TargetLen: 8,
			Lock:      locks.TATAS,
		},
		Keys: Uniform20,
	}
}

// TestChaosZMSQ is the acceptance gate: a seeded fault schedule must
// inject at all four points and complete with intact invariants, zero
// failed extractions on a provably nonempty queue, and no b+1 contract
// violations.
func TestChaosZMSQ(t *testing.T) {
	plan := chaosPlan(0xC4A05)
	res, err := RunChaos(plan)
	if err != nil {
		t.Fatalf("chaos run failed: %v\nviolations: %v", err, res.Report.Violations)
	}
	for _, p := range fault.Points() {
		if !plan.Faults.Armed(p) {
			continue // WAL crash points stay unarmed in volatile chaos runs
		}
		if res.FaultFired[p.String()] == 0 {
			t.Errorf("fault point %v never fired (calls=%d)", p, res.FaultCalls[p.String()])
		}
	}
	if res.Inserted == 0 || res.Inserted != res.Extracted {
		t.Fatalf("conservation: inserted %d, extracted %d", res.Inserted, res.Extracted)
	}
	if res.Report.StrictExtracts == 0 {
		t.Fatal("strict phase recorded no extractions; b+1 contract unexercised")
	}
	if res.Report.WorstRun > 8 { // the plan's batch
		t.Errorf("WorstRun = %d exceeds batch 8: b+1 window should have flagged this",
			res.Report.WorstRun)
	}
	t.Logf("chaos: %d ops, %d strict extracts, max strict rank %d, worst run %d, faults %v",
		res.Inserted, res.Report.StrictExtracts, res.Report.MaxStrictRank,
		res.Report.WorstRun, res.FaultFired)
}

// TestChaosZMSQVariants runs shorter schedules over the paper's other
// configurations: strict (batch=0), leaky (no hazard domain), array sets,
// and blocking-lock inserts (NoTryLock).
func TestChaosZMSQVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	variants := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"strict", func(c *core.Config) { c.Batch = 0 }},
		{"leaky", func(c *core.Config) { c.Leaky = true }},
		{"arrayset", func(c *core.Config) { c.ArraySet = true }},
		{"notrylock", func(c *core.Config) { c.NoTryLock = true }},
		{"helper", func(c *core.Config) { c.Helper = true }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			plan := chaosPlan(0xBADD + uint64(len(v.name)))
			plan.Rounds = 2
			plan.OpsPerRound = 800
			v.mod(&plan.Queue)
			res, err := RunChaos(plan)
			if err != nil {
				t.Fatalf("chaos(%s) failed: %v\nviolations: %v", v.name, err, res.Report.Violations)
			}
			if res.Inserted != res.Extracted {
				t.Fatalf("conservation: inserted %d, extracted %d", res.Inserted, res.Extracted)
			}
		})
	}
}

// TestChaosFullTryLockFailureStillLive pins the injection liveness escape:
// even a 100% forced-trylock-failure schedule must not starve inserts or
// extractions (both paths bypass injection after repeated failures), so
// the run terminates with every contract intact.
func TestChaosFullTryLockFailureStillLive(t *testing.T) {
	plan := chaosPlan(3)
	plan.Rounds = 1
	plan.OpsPerRound = 200
	plan.Faults.TryLockPct = 100
	res, err := RunChaos(plan)
	if err != nil {
		t.Fatalf("chaos under 100%% trylock failure: %v\nviolations: %v", err, res.Report.Violations)
	}
	if res.Inserted != res.Extracted {
		t.Fatalf("conservation: inserted %d, extracted %d", res.Inserted, res.Extracted)
	}
}

// TestChaosDeterministicSchedule re-runs the same plan and checks the
// fault decision streams match call-for-call in aggregate.
func TestChaosDeterministicSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	plan := chaosPlan(7)
	plan.Rounds = 1
	plan.OpsPerRound = 500
	a, err := RunChaos(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(plan)
	if err != nil {
		t.Fatal(err)
	}
	if a.Inserted != b.Inserted {
		t.Fatalf("workload not reproducible: %d vs %d inserts", a.Inserted, b.Inserted)
	}
}

// TestChaosSharded is the sharded front-end's chaos acceptance gate: the
// same seeded fault schedule against 3 ZMSQ shards must hold every
// composed contract — per-round invariants across shards, conservation,
// and the S·(Batch+1) strict window — with all four fault points firing.
func TestChaosSharded(t *testing.T) {
	const shards = 3
	plan := chaosPlan(0x5A4D)
	res, err := RunChaosSharded(plan, shards)
	if err != nil {
		t.Fatalf("sharded chaos run failed: %v\nviolations: %v", err, res.Report.Violations)
	}
	for _, p := range fault.Points() {
		if !plan.Faults.Armed(p) {
			continue // WAL crash points stay unarmed in volatile chaos runs
		}
		if res.FaultFired[p.String()] == 0 {
			t.Errorf("fault point %v never fired (calls=%d)", p, res.FaultCalls[p.String()])
		}
	}
	if res.Inserted == 0 || res.Inserted != res.Extracted {
		t.Fatalf("conservation: inserted %d, extracted %d", res.Inserted, res.Extracted)
	}
	if res.Report.StrictExtracts == 0 {
		t.Fatal("strict phase recorded no extractions; composed window unexercised")
	}
	if bound := shards*(plan.Queue.Batch+1) - 1; res.Report.WorstRun > bound {
		t.Errorf("WorstRun = %d exceeds composed bound %d: checker should have flagged this",
			res.Report.WorstRun, bound)
	}
	t.Logf("sharded chaos: %d ops, %d strict extracts, worst run %d (bound %d), faults %v",
		res.Inserted, res.Report.StrictExtracts, res.Report.WorstRun,
		shards*(plan.Queue.Batch+1)-1, res.FaultFired)
}

// TestChaosBaselineConservation runs the fault-free chaos workload over
// the baselines and checks element conservation.
func TestChaosBaselineConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	plan := chaosPlan(11)
	plan.Rounds = 2
	plan.OpsPerRound = 500
	for name, maker := range BaselineMakers() {
		t.Run(name, func(t *testing.T) {
			res, err := RunChaosBaseline(name, maker, plan)
			if err != nil {
				t.Fatalf("baseline %s: %v\nviolations: %v", name, err, res.Report.Violations)
			}
		})
	}
}

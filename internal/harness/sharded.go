package harness

import (
	"context"

	"repro/internal/core"
	"repro/internal/pq"
	"repro/internal/sharded"
)

// Sharded adapts a payload-less sharded.Queue — S ZMSQ shards behind a
// choice-of-two front-end — to the harness's pq.Queue, with the full
// capability set the ZMSQ adapter exposes: Named, Closer, Batcher,
// ContextExtractor and MetricsSource.
type Sharded struct {
	Q *sharded.Queue[struct{}]
	n string
}

// NewSharded builds a Sharded adapter from cfg. Its display name is the
// registry key "zmsq-sharded" regardless of the shard count; experiment
// cells that sweep shard counts label their rows explicitly.
func NewSharded(cfg sharded.Config) *Sharded {
	return &Sharded{Q: sharded.New[struct{}](cfg), n: "zmsq-sharded"}
}

// WrapSharded adapts an existing sharded queue (e.g. one rebuilt by
// sharded.Recover) under the given display name.
func WrapSharded(q *sharded.Queue[struct{}], name string) *Sharded {
	return &Sharded{Q: q, n: name}
}

// Insert implements pq.Queue.
func (s *Sharded) Insert(key uint64) { s.Q.Insert(key, struct{}{}) }

// ExtractMax implements pq.Queue.
func (s *Sharded) ExtractMax() (uint64, bool) {
	k, _, ok := s.Q.TryExtractMax()
	return k, ok
}

// ExtractMaxContext implements pq.ContextExtractor.
func (s *Sharded) ExtractMaxContext(ctx context.Context) (uint64, error) {
	k, _, err := s.Q.ExtractMaxContext(ctx)
	return k, pqErr(err)
}

// Name implements pq.Named.
func (s *Sharded) Name() string { return s.n }

// Close implements pq.Closer.
func (s *Sharded) Close() { s.Q.Close() }

// Flush implements pq.Flusher: buffered-policy inserts are pushed into
// their shards so a following drain sees every element.
func (s *Sharded) Flush() { s.Q.Flush() }

// InsertBatch implements pq.Batcher.
func (s *Sharded) InsertBatch(keys []uint64) { s.Q.InsertBatch(keys, nil) }

// ExtractBatch implements pq.Batcher.
func (s *Sharded) ExtractBatch(dst []uint64, n int) []uint64 {
	buf := elemBufs.Get().(*[]core.Element[struct{}])
	*buf = s.Q.ExtractBatch((*buf)[:0], n)
	for _, e := range *buf {
		dst = append(dst, e.Key)
	}
	elemBufs.Put(buf)
	return dst
}

// Snapshot implements MetricsSource with the merged cross-shard view, so
// runners and the serving mux treat a sharded queue exactly like a single
// one. The per-shard breakdown and the sharded-level telemetry are on
// ShardSnapshot.
func (s *Sharded) Snapshot() core.MetricsSnapshot { return s.Q.Snapshot().Merged }

// ShardSnapshot returns the full sharded snapshot: merged and per-shard
// metrics plus the sweep/steal counters and imbalance gauges.
func (s *Sharded) ShardSnapshot() sharded.Snapshot { return s.Q.Snapshot() }

var (
	_ pq.Queue            = (*Sharded)(nil)
	_ pq.Named            = (*Sharded)(nil)
	_ pq.Closer           = (*Sharded)(nil)
	_ pq.Batcher          = (*Sharded)(nil)
	_ pq.ContextExtractor = (*Sharded)(nil)
	_ MetricsSource       = (*Sharded)(nil)
)

package harness

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pq"
)

// MetricsSource is the capability interface through which runners and the
// serving tools read a queue's instrumentation. The ZMSQ adapter satisfies
// it; baseline substrates do not, and runners simply skip them.
type MetricsSource interface {
	Snapshot() core.MetricsSnapshot
}

// Snapshot implements MetricsSource on the ZMSQ adapter.
func (z *ZMSQ) Snapshot() core.MetricsSnapshot { return z.Q.Snapshot() }

var _ MetricsSource = (*ZMSQ)(nil)

// SnapshotOf returns q's metrics snapshot if q exposes one AND metrics were
// enabled on it, else nil. Runners use it to attach telemetry to results
// without caring which substrate ran.
func SnapshotOf(q pq.Queue) *core.MetricsSnapshot {
	ms, ok := q.(MetricsSource)
	if !ok {
		return nil
	}
	s := ms.Snapshot()
	if !s.Enabled {
		return nil
	}
	return &s
}

// expvar.Publish panics on duplicate names, so the process-wide "zmsq"
// variable is published once and re-pointed at the latest source.
var (
	expvarOnce sync.Once
	expvarSnap atomic.Pointer[func() core.MetricsSnapshot]
)

// NewMetricsMux builds the observability endpoint set every serving tool
// shares (cmd/zmsqserve, zmsqbench -metricsaddr):
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the MetricsSnapshot as JSON
//	/debug/vars    expvar (includes the snapshot under "zmsq")
//	/debug/pprof/  the standard pprof handlers
//
// snap is called once per scrape; it must be safe for concurrent use
// (Queue.Snapshot is).
func NewMetricsMux(snap func() core.MetricsSnapshot) *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("zmsq", expvar.Func(func() any {
			if f := expvarSnap.Load(); f != nil {
				return (*f)()
			}
			return nil
		}))
	})
	expvarSnap.Store(&snap)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

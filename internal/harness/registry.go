package harness

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the maker registry: the single source of truth mapping a
// queue's experiment label to its constructor. Implementations register
// themselves from per-implementation files (makers_zmsq.go,
// makers_baselines.go) instead of being enumerated in one hand-maintained
// map, so adding a substrate is one Register call next to its adapter — and
// every cmd that iterates Makers() (runall, prodcons, sssp, chaos
// -baselines) picks it up without edits.
//
// The registered name is also the display name: a maker must build queues
// whose pq.Named.Name() returns the maker key (asserted by
// TestMakerNamesMatchRegistry), so runner output labeled via pq.NameOf is
// always the registry key, never a drifting adapter-internal variant
// string.

var (
	makersMu sync.RWMutex
	makers   = map[string]QueueMaker{}
)

// Register adds a named queue constructor to the registry. It is intended
// to be called from init functions; it panics on an empty name or a
// duplicate registration, both of which are programming errors.
func Register(name string, mk QueueMaker) {
	if name == "" {
		panic("harness.Register: empty maker name")
	}
	if mk == nil {
		panic(fmt.Sprintf("harness.Register(%q): nil maker", name))
	}
	makersMu.Lock()
	defer makersMu.Unlock()
	if _, dup := makers[name]; dup {
		panic(fmt.Sprintf("harness.Register(%q): duplicate registration", name))
	}
	makers[name] = mk
}

// Makers returns a copy of the registry: every registered queue
// constructor by name. Mutating the returned map does not affect the
// registry.
func Makers() map[string]QueueMaker {
	makersMu.RLock()
	defer makersMu.RUnlock()
	out := make(map[string]QueueMaker, len(makers))
	for name, mk := range makers {
		out[name] = mk
	}
	return out
}

// MakerNames returns the registered names in sorted order, for
// deterministic iteration in reports and usage strings.
func MakerNames() []string {
	makersMu.RLock()
	names := make([]string, 0, len(makers))
	for name := range makers {
		names = append(names, name)
	}
	makersMu.RUnlock()
	sort.Strings(names)
	return names
}

package harness

import (
	"context"
	"testing"

	"repro/internal/pq"
)

// stubQueue is a minimal named queue for registry-semantics tests; its
// name tracks its maker key so it never violates the registry's naming
// invariant (TestMakerNamesMatchRegistry iterates every registration,
// including test ones).
type stubQueue struct{ name string }

func (s stubQueue) Insert(uint64)              { panic("stub") }
func (s stubQueue) ExtractMax() (uint64, bool) { panic("stub") }
func (s stubQueue) Name() string               { return s.name }

func TestRegisterSemantics(t *testing.T) {
	const name = "test-registry-stub"
	Register(name, func(int) pq.Queue { return stubQueue{name: name} })
	if _, ok := Makers()[name]; !ok {
		t.Fatalf("registered maker %q not visible in Makers()", name)
	}
	mustPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", what)
			}
		}()
		f()
	}
	mustPanic("duplicate Register", func() {
		Register(name, func(int) pq.Queue { return stubQueue{name: name} })
	})
	mustPanic("empty-name Register", func() {
		Register("", func(int) pq.Queue { return stubQueue{} })
	})
	mustPanic("nil-maker Register", func() { Register("test-nil-maker", nil) })

	names := MakerNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("MakerNames not sorted/unique: %q before %q", names[i-1], names[i])
		}
	}
	if len(names) != len(Makers()) {
		t.Fatalf("MakerNames has %d entries, Makers %d", len(names), len(Makers()))
	}
}

// TestMakerNamesMatchRegistry pins the registry's labeling contract: the
// maker key is the single source of truth, so every registered maker must
// build queues whose Name() is exactly the key — including the "zmsq"
// maker under the zmsq_arrayset build tag, where VariantName would
// otherwise drift to "zmsq(array)". pq.NameOf then labels runner results
// with the key, never a fallback or variant string.
func TestMakerNamesMatchRegistry(t *testing.T) {
	for name, mk := range Makers() {
		q := mk(2)
		if got := pq.NameOf(q, "MISSING"); got != name {
			t.Errorf("maker %q built a queue named %q", name, got)
		}
		if c, ok := q.(pq.Closer); ok {
			c.Close()
		}
	}
}

// TestCapabilityPassThrough is the capability matrix: which optional pq
// interfaces each registered substrate exposes. The two ZMSQ-backed
// adapters must pass every capability through; the baselines expose none
// of the optional ones (they are plain pq.Queue + pq.Named).
func TestCapabilityPassThrough(t *testing.T) {
	cases := []struct {
		maker                            string
		batcher, closer, ctxExt, metrics bool
	}{
		{"zmsq", true, true, true, true},
		{"zmsq(array)", true, true, true, true},
		{"zmsq(leak)", true, true, true, true},
		{"zmsq-sharded", true, true, true, true},
		{"mound", false, false, false, false},
		{"spraylist", false, false, false, false},
		{"multiqueue", false, false, false, false},
		{"globalheap", false, false, false, false},
		{"fifo", false, false, false, false},
	}
	makers := Makers()
	for _, tc := range cases {
		mk, ok := makers[tc.maker]
		if !ok {
			t.Errorf("maker %q not registered", tc.maker)
			continue
		}
		q := mk(2)
		if _, ok := q.(pq.Named); !ok {
			t.Errorf("%s: not pq.Named", tc.maker)
		}
		if _, ok := q.(pq.Batcher); ok != tc.batcher {
			t.Errorf("%s: pq.Batcher = %v, want %v", tc.maker, ok, tc.batcher)
		}
		if _, ok := q.(pq.Closer); ok != tc.closer {
			t.Errorf("%s: pq.Closer = %v, want %v", tc.maker, ok, tc.closer)
		}
		if _, ok := q.(pq.ContextExtractor); ok != tc.ctxExt {
			t.Errorf("%s: pq.ContextExtractor = %v, want %v", tc.maker, ok, tc.ctxExt)
		}
		if _, ok := q.(MetricsSource); ok != tc.metrics {
			t.Errorf("%s: MetricsSource = %v, want %v", tc.maker, ok, tc.metrics)
		}
		if c, ok := q.(pq.Closer); ok {
			c.Close()
		}
	}
}

// TestContextExtractorSentinels checks that the adapters translate the
// core sentinels into package pq's, so callers can classify with
// pq.IsEmpty / pq.IsClosed without importing core.
func TestContextExtractorSentinels(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"zmsq", "zmsq-sharded"} {
		q := Makers()[name](2)
		ce := q.(pq.ContextExtractor)
		if _, err := ce.ExtractMaxContext(ctx); !pq.IsEmpty(err) {
			t.Errorf("%s: empty queue returned %v, want pq.ErrEmpty", name, err)
		}
		q.Insert(11)
		if k, err := ce.ExtractMaxContext(ctx); err != nil || k != 11 {
			t.Errorf("%s: got %d, %v", name, k, err)
		}
		q.(pq.Closer).Close()
		if _, err := ce.ExtractMaxContext(ctx); !pq.IsClosed(err) {
			t.Errorf("%s: closed+drained queue returned %v, want pq.ErrClosed", name, err)
		}
		canceled, cancel := context.WithCancel(ctx)
		cancel()
		if _, err := ce.ExtractMaxContext(canceled); err != context.Canceled {
			t.Errorf("%s: canceled ctx returned %v", name, err)
		}
	}
}

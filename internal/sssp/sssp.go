// Package sssp implements the concurrent single-source shortest path
// harness of §4.6/§4.7: a label-correcting parallel Dijkstra driven by any
// (possibly relaxed) concurrent priority queue. Workers repeatedly extract
// the nearest-looking task, skip it if it is stale, and relax out-edges
// with CAS-min distance updates. A relaxed queue returns tasks slightly out
// of order; the algorithm stays correct (distances only ever decrease to
// their true values) but pays for relaxation with wasted re-expansions —
// the exact trade-off the paper's SSSP experiments measure.
package sssp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/pq"
)

// EncodeTask packs (dist, node) into a priority key for a max-queue:
// smaller distances must come out first, so the distance is bitwise
// inverted in the high 32 bits. Distances are capped at 2^32-2; the graphs
// in this repository stay far below that.
func EncodeTask(dist uint64, node uint32) uint64 {
	if dist > 0xfffffffe {
		dist = 0xfffffffe
	}
	return ^dist<<32 | uint64(node)
}

// DecodeTask unpacks a key produced by EncodeTask.
func DecodeTask(key uint64) (dist uint64, node uint32) {
	return ^(key >> 32) & 0xffffffff, uint32(key)
}

// Result carries the distances and the work accounting for one run.
type Result struct {
	Dist      []uint64
	Elapsed   time.Duration
	Processed int64 // tasks extracted and expanded
	Stale     int64 // tasks extracted but already superseded (wasted work)
	Updates   int64 // successful distance improvements
	Workers   int
}

// WastedFraction is the share of extracted tasks that were stale.
func (r Result) WastedFraction() float64 {
	total := r.Processed + r.Stale
	if total == 0 {
		return 0
	}
	return float64(r.Stale) / float64(total)
}

// Run computes shortest paths from src over q with the given number of
// worker goroutines. q must be empty; it is drained (terminated) when Run
// returns. Any pq.Queue works: strict queues yield zero stale extractions
// on one worker; relaxed queues trade stale work for extraction
// scalability.
func Run(g *graph.Graph, src uint32, q pq.Queue, workers int) Result {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumNodes()
	dist := make([]atomic.Uint64, n)
	for i := range dist {
		dist[i].Store(graph.Infinity)
	}
	dist[src].Store(0)

	// pending counts tasks that have been inserted but whose processing has
	// not finished. A worker decrements only after finishing all inserts a
	// task triggers, so pending == 0 with an empty queue means termination.
	var pending atomic.Int64
	pending.Add(1)
	q.Insert(EncodeTask(0, src))

	var processed, stale, updates atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localProcessed, localStale, localUpdates int64
			idleSpins := 0
			for {
				key, ok := q.ExtractMax()
				if !ok {
					if pending.Load() == 0 {
						break
					}
					// Relaxed queues may fail spuriously (SprayList) or
					// transiently; yield and retry while work remains.
					idleSpins++
					if idleSpins%64 == 0 {
						runtime.Gosched()
					}
					continue
				}
				idleSpins = 0
				d, u := DecodeTask(key)
				if d > dist[u].Load() {
					localStale++
					pending.Add(-1)
					continue
				}
				localProcessed++
				targets, weights := g.Neighbors(u)
				for i, v := range targets {
					nd := d + uint64(weights[i])
					for {
						cur := dist[v].Load()
						if nd >= cur {
							break
						}
						if dist[v].CompareAndSwap(cur, nd) {
							localUpdates++
							pending.Add(1)
							q.Insert(EncodeTask(nd, v))
							break
						}
					}
				}
				pending.Add(-1)
			}
			processed.Add(localProcessed)
			stale.Add(localStale)
			updates.Add(localUpdates)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := make([]uint64, n)
	for i := range out {
		out[i] = dist[i].Load()
	}
	return Result{
		Dist:      out,
		Elapsed:   elapsed,
		Processed: processed.Load(),
		Stale:     stale.Load(),
		Updates:   updates.Load(),
		Workers:   workers,
	}
}

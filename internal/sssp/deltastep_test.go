package sssp

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ba":   graph.PreferentialAttachment(3000, 6, 42),
		"grid": graph.Grid(40, 40, 9),
		"rmat": graph.RMAT(10, 6, 5),
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			want := graph.Dijkstra(g, 0)
			for _, workers := range []int{1, 4} {
				for _, delta := range []uint64{0, 1, 100, 10000} {
					res := DeltaStepping(g, 0, delta, workers)
					for i := range want {
						if res.Dist[i] != want[i] {
							t.Fatalf("delta=%d workers=%d: dist[%d] = %d, want %d",
								delta, workers, i, res.Dist[i], want[i])
						}
					}
				}
			}
		})
	}
}

func TestDeltaSteppingDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddUndirected(0, 1, 3)
	b.AddUndirected(1, 2, 4)
	g := b.Build()
	res := DeltaStepping(g, 0, 2, 2)
	if res.Dist[0] != 0 || res.Dist[1] != 3 || res.Dist[2] != 7 {
		t.Fatalf("distances wrong: %v", res.Dist[:3])
	}
	if res.Dist[3] != graph.Infinity || res.Dist[4] != graph.Infinity {
		t.Fatal("isolated nodes should be unreachable")
	}
}

func TestDeltaSteppingWorkAccounting(t *testing.T) {
	g := graph.PreferentialAttachment(2000, 5, 7)
	res := DeltaStepping(g, 0, 0, 4)
	if res.Processed == 0 {
		t.Fatal("no work processed")
	}
	if res.WastedFraction() < 0 || res.WastedFraction() > 1 {
		t.Fatalf("wasted fraction %v", res.WastedFraction())
	}
	// Huge delta = one bucket = Bellman-Ford-ish: still correct.
	res2 := DeltaStepping(g, 0, 1<<40, 4)
	want := graph.Dijkstra(g, 0)
	for i := range want {
		if res2.Dist[i] != want[i] {
			t.Fatalf("one-bucket delta-stepping wrong at %d", i)
		}
	}
}

func TestDeltaSteppingQuickGrids(t *testing.T) {
	f := func(seed uint64, deltaRaw uint16) bool {
		g := graph.Grid(8, 8, seed)
		delta := uint64(deltaRaw)%500 + 1
		res := DeltaStepping(g, 0, delta, 2)
		want := graph.Dijkstra(g, 0)
		for i := range want {
			if res.Dist[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeltaStepping(b *testing.B) {
	g := graph.PreferentialAttachment(20000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(g, 0, 0, 4)
	}
}

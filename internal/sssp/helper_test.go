package sssp

import "repro/internal/core"

func coreDefault() core.Config { return core.DefaultConfig() }

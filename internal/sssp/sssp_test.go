package sssp

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/pq"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		dist uint64
		node uint32
	}{
		{0, 0}, {1, 1}, {12345, 67890}, {0xfffffffe, 0xffffffff},
	}
	for _, c := range cases {
		d, n := DecodeTask(EncodeTask(c.dist, c.node))
		if d != c.dist || n != c.node {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", c.dist, c.node, d, n)
		}
	}
}

func TestEncodeClampsDistance(t *testing.T) {
	d, _ := DecodeTask(EncodeTask(^uint64(0), 5))
	if d != 0xfffffffe {
		t.Fatalf("huge distance not clamped: %d", d)
	}
}

func TestEncodeOrdering(t *testing.T) {
	// Smaller distance must map to a larger key (higher priority).
	f := func(a, b uint32, n1, n2 uint32) bool {
		da, db := uint64(a), uint64(b)
		ka, kb := EncodeTask(da, n1), EncodeTask(db, n2)
		if da < db {
			return ka > kb
		}
		if da > db {
			return ka < kb
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func matchesDijkstra(t *testing.T, g *graph.Graph, got []uint64) {
	t.Helper()
	want := graph.Dijkstra(g, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMatchesDijkstraAllQueues(t *testing.T) {
	g := graph.PreferentialAttachment(3000, 6, 42)
	for name, mk := range harness.Makers() {
		if name == "fifo" {
			continue // a FIFO is a valid label-correcting driver but very slow; covered separately
		}
		mk := mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{1, 4} {
				res := Run(g, 0, mk(workers), workers)
				matchesDijkstra(t, g, res.Dist)
				if res.Processed == 0 {
					t.Fatal("no tasks processed")
				}
			}
		})
	}
}

func TestFIFOStillCorrect(t *testing.T) {
	// Label-correcting SSSP is correct with ANY queue discipline; a FIFO
	// (Bellman-Ford-ish) just wastes more work. Small graph keeps it fast.
	g := graph.Grid(12, 12, 3)
	res := Run(g, 0, pq.NewFIFO(), 4)
	matchesDijkstra(t, g, res.Dist)
}

func TestGridCorrectness(t *testing.T) {
	g := graph.Grid(40, 40, 9)
	res := Run(g, 0, pq.NewGlobalHeap(0), 4)
	matchesDijkstra(t, g, res.Dist)
}

func TestStrictSingleWorkerNoStaleExplosion(t *testing.T) {
	// A strict queue with one worker is classic Dijkstra: stale tasks only
	// arise from decrease-key-by-reinsertion, never from relaxation, so
	// processed tasks == reachable nodes.
	g := graph.PreferentialAttachment(2000, 5, 7)
	res := Run(g, 0, pq.NewGlobalHeap(0), 1)
	reachable := 0
	for _, d := range res.Dist {
		if d != graph.Infinity {
			reachable++
		}
	}
	if res.Processed != int64(reachable) {
		t.Fatalf("processed %d tasks for %d reachable nodes", res.Processed, reachable)
	}
}

func TestWastedFractionAccounting(t *testing.T) {
	g := graph.PreferentialAttachment(2000, 5, 8)
	res := Run(g, 0, harness.NewZMSQ(coreDefault()), 4)
	if res.WastedFraction() < 0 || res.WastedFraction() > 1 {
		t.Fatalf("wasted fraction %v out of range", res.WastedFraction())
	}
	if res.Workers != 4 {
		t.Fatalf("workers = %d", res.Workers)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddUndirected(0, 1, 5)
	// nodes 2,3 isolated
	g := b.Build()
	res := Run(g, 0, pq.NewGlobalHeap(0), 2)
	if res.Dist[0] != 0 || res.Dist[1] != 5 {
		t.Fatalf("connected distances wrong: %v", res.Dist[:2])
	}
	if res.Dist[2] != graph.Infinity || res.Dist[3] != graph.Infinity {
		t.Fatal("isolated nodes should be unreachable")
	}
}

func BenchmarkSSSPZMSQ(b *testing.B) {
	g := graph.PreferentialAttachment(20000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, 0, harness.NewZMSQ(coreDefault()), 4)
	}
}

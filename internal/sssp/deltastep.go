package sssp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// This file implements delta-stepping (Meyer & Sanders, 2003), the classic
// bucket-based parallel SSSP that the relaxed-priority-queue literature —
// including the SprayList paper whose SSSP harness §4.6 adopts — uses as
// its reference point. It is included as an ablation: a relaxed priority
// queue buys Dijkstra-like work-efficiency with extraction scalability;
// delta-stepping instead buys scalability by processing whole distance
// buckets at once, paying with re-relaxations inside a bucket. Comparing
// the two on the same graphs shows where the relaxed-queue approach sits.

// DeltaStepping computes shortest paths from src, processing distance
// range [i·delta, (i+1)·delta) as bucket i. delta <= 0 selects the mean
// edge weight heuristic. workers <= 0 selects GOMAXPROCS.
func DeltaStepping(g *graph.Graph, src uint32, delta uint64, workers int) Result {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if delta == 0 {
		delta = meanWeight(g)
		if delta == 0 {
			delta = 1
		}
	}
	n := g.NumNodes()
	dist := make([]atomic.Uint64, n)
	for i := range dist {
		dist[i].Store(graph.Infinity)
	}
	dist[src].Store(0)

	// buckets[i] holds nodes whose tentative distance fell into bucket i.
	// A node can appear in several buckets; stale entries are skipped at
	// processing time, exactly like the queue driver's stale check.
	var mu sync.Mutex
	buckets := map[uint64][]uint32{0: {src}}

	var processed, stale, updates atomic.Int64
	start := time.Now()
	for {
		// Find the lowest nonempty bucket.
		mu.Lock()
		var cur uint64
		found := false
		for b := range buckets {
			if !found || b < cur {
				cur = b
				found = true
			}
		}
		if !found {
			mu.Unlock()
			break
		}
		frontier := buckets[cur]
		delete(buckets, cur)
		mu.Unlock()

		// Process the bucket until it stops refilling (light edges can
		// re-add nodes to the current bucket).
		for len(frontier) > 0 {
			next := processBucket(g, frontier, cur, delta, dist,
				&mu, buckets, workers, &processed, &stale, &updates)
			frontier = next
		}
	}
	elapsed := time.Since(start)

	out := make([]uint64, n)
	for i := range out {
		out[i] = dist[i].Load()
	}
	return Result{
		Dist:      out,
		Elapsed:   elapsed,
		Processed: processed.Load(),
		Stale:     stale.Load(),
		Updates:   updates.Load(),
		Workers:   workers,
	}
}

// processBucket relaxes all edges out of the frontier in parallel and
// returns the nodes that re-entered the current bucket.
func processBucket(g *graph.Graph, frontier []uint32, bucket, delta uint64,
	dist []atomic.Uint64, mu *sync.Mutex, buckets map[uint64][]uint32,
	workers int, processed, stale, updates *atomic.Int64) []uint32 {

	if workers > len(frontier) {
		workers = len(frontier)
	}
	if workers < 1 {
		workers = 1
	}
	var redo []uint32
	var redoMu sync.Mutex
	var wg sync.WaitGroup
	chunk := (len(frontier) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(frontier) {
			hi = len(frontier)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []uint32) {
			defer wg.Done()
			var localRedo []uint32
			localNew := map[uint64][]uint32{}
			var localProcessed, localStale, localUpdates int64
			for _, u := range part {
				du := dist[u].Load()
				if du/delta != bucket {
					localStale++ // moved to another bucket since enqueued
					continue
				}
				localProcessed++
				targets, weights := g.Neighbors(u)
				for i, v := range targets {
					nd := du + uint64(weights[i])
					for {
						cur := dist[v].Load()
						if nd >= cur {
							break
						}
						if dist[v].CompareAndSwap(cur, nd) {
							localUpdates++
							b := nd / delta
							if b == bucket {
								localRedo = append(localRedo, v)
							} else {
								localNew[b] = append(localNew[b], v)
							}
							break
						}
					}
				}
			}
			if len(localNew) > 0 {
				mu.Lock()
				for b, nodes := range localNew {
					buckets[b] = append(buckets[b], nodes...)
				}
				mu.Unlock()
			}
			if len(localRedo) > 0 {
				redoMu.Lock()
				redo = append(redo, localRedo...)
				redoMu.Unlock()
			}
			processed.Add(localProcessed)
			stale.Add(localStale)
			updates.Add(localUpdates)
		}(frontier[lo:hi])
	}
	wg.Wait()
	return redo
}

func meanWeight(g *graph.Graph) uint64 {
	if len(g.Weights) == 0 {
		return 1
	}
	var sum uint64
	for _, w := range g.Weights {
		sum += uint64(w)
	}
	return sum / uint64(len(g.Weights))
}

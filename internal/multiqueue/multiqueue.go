// Package multiqueue implements the MultiQueue of Rihani, Sanders and
// Dementiev (2015), discussed in §2.1 of the ZMSQ paper. It keeps c·p
// sequential heaps, each behind its own lock. Insert pushes into a random
// heap; ExtractMax peeks two random heaps and pops the better one — the
// power-of-two-choices rule that keeps the per-extraction rank error
// O(p) in expectation.
//
// Like the k-LSM and unlike ZMSQ, the MultiQueue's relaxation grows with
// the thread count, and an extraction can observe its two sampled heaps
// empty while other heaps hold elements — both properties the ZMSQ paper
// contrasts with its own guarantees. The implementation reproduces them
// faithfully (ExtractMax falls back to a full scan only after repeated
// sampling failures, mirroring common implementations).
package multiqueue

import (
	"sync"
	"sync/atomic"

	"repro/internal/pq"
	"repro/internal/xrand"
)

// DefaultFactor is the conventional c in c·p queues.
const DefaultFactor = 2

// MultiQueue is a relaxed concurrent priority queue. All methods are safe
// for concurrent use.
type MultiQueue struct {
	queues []subqueue
	rngs   sync.Pool
	seed   atomic.Uint64
}

type subqueue struct {
	mu   sync.Mutex
	heap *pq.SeqHeap
	// top caches the heap maximum (valid when size > 0) so peeking does
	// not need the lock.
	top  atomic.Uint64
	size atomic.Int64
	_    [32]byte
}

// New returns a MultiQueue with factor*p internal heaps (factor <= 0
// selects DefaultFactor; p < 1 is treated as 1).
func New(p, factor int) *MultiQueue {
	if p < 1 {
		p = 1
	}
	if factor <= 0 {
		factor = DefaultFactor
	}
	m := &MultiQueue{queues: make([]subqueue, p*factor)}
	for i := range m.queues {
		m.queues[i].heap = pq.NewSeqHeap(0)
	}
	m.rngs.New = func() any { return xrand.New(xrand.Mix64(m.seed.Add(1) + 0xabcd)) }
	return m
}

// Insert adds key to a uniformly random internal heap.
func (m *MultiQueue) Insert(key uint64) {
	r := m.rngs.Get().(*xrand.Rand)
	i := r.Intn(len(m.queues))
	m.rngs.Put(r)
	q := &m.queues[i]
	q.mu.Lock()
	q.heap.Insert(key)
	if top, _ := q.heap.Max(); true {
		q.top.Store(top)
	}
	q.size.Add(1)
	q.mu.Unlock()
}

// ExtractMax samples two random heaps and pops from the one with the larger
// cached top. After a bounded number of empty samples it scans all heaps
// once; ok=false means every heap was observed empty during the scan.
func (m *MultiQueue) ExtractMax() (uint64, bool) {
	r := m.rngs.Get().(*xrand.Rand)
	defer m.rngs.Put(r)
	const sampleAttempts = 4
	for attempt := 0; attempt < sampleAttempts; attempt++ {
		a := r.Intn(len(m.queues))
		b := r.Intn(len(m.queues))
		best := m.pick(a, b)
		if best < 0 {
			continue
		}
		if k, ok := m.popFrom(best); ok {
			return k, true
		}
	}
	// Fallback scan so a nonempty MultiQueue cannot starve a caller
	// forever; one pass is enough for the harness's retry loops.
	for i := range m.queues {
		if k, ok := m.popFrom(i); ok {
			return k, true
		}
	}
	return 0, false
}

// pick returns the index (a or b) with the larger cached top, or -1 if both
// appear empty.
func (m *MultiQueue) pick(a, b int) int {
	qa, qb := &m.queues[a], &m.queues[b]
	ea, eb := qa.size.Load() > 0, qb.size.Load() > 0
	switch {
	case ea && eb:
		if qa.top.Load() >= qb.top.Load() {
			return a
		}
		return b
	case ea:
		return a
	case eb:
		return b
	default:
		return -1
	}
}

func (m *MultiQueue) popFrom(i int) (uint64, bool) {
	q := &m.queues[i]
	q.mu.Lock()
	k, ok := q.heap.ExtractMax()
	if ok {
		q.size.Add(-1)
		if top, has := q.heap.Max(); has {
			q.top.Store(top)
		}
	}
	q.mu.Unlock()
	return k, ok
}

// Len reports a snapshot element count.
func (m *MultiQueue) Len() int {
	var total int64
	for i := range m.queues {
		total += m.queues[i].size.Load()
	}
	return int(total)
}

// Name implements the harness's Named interface.
func (m *MultiQueue) Name() string { return "multiqueue" }

var _ pq.Queue = (*MultiQueue)(nil)

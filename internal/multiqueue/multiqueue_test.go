package multiqueue

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

func TestEmpty(t *testing.T) {
	m := New(4, 2)
	if _, ok := m.ExtractMax(); ok {
		t.Fatal("extract from empty multiqueue succeeded")
	}
	if m.Len() != 0 {
		t.Fatal("Len != 0 on empty queue")
	}
}

func TestDefaults(t *testing.T) {
	m := New(0, 0)
	if len(m.queues) != DefaultFactor {
		t.Fatalf("New(0,0) has %d queues, want %d", len(m.queues), DefaultFactor)
	}
}

func TestConservationSingleThread(t *testing.T) {
	m := New(4, 2)
	r := xrand.New(8)
	const n = 10000
	in := map[uint64]int{}
	for i := 0; i < n; i++ {
		k := r.Uint64() % 5000
		m.Insert(k)
		in[k]++
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	out := map[uint64]int{}
	for i := 0; i < n; i++ {
		k, ok := m.ExtractMax()
		if !ok {
			t.Fatalf("extract %d failed (fallback scan must find elements)", i)
		}
		out[k]++
	}
	for k, c := range in {
		if out[k] != c {
			t.Fatalf("key %d: in %d out %d", k, c, out[k])
		}
	}
}

func TestExtractsHighPriorityKeys(t *testing.T) {
	// Two-choice sampling keeps extractions near the top: over a large
	// prefill, the first extraction must be within the top O(#queues)
	// ranks with overwhelming probability.
	m := New(4, 2) // 8 queues
	const n = 8192
	for i := 0; i < n; i++ {
		m.Insert(uint64(i))
	}
	k, ok := m.ExtractMax()
	if !ok {
		t.Fatal("extract failed")
	}
	if k < n-256 {
		t.Fatalf("first extraction rank %d — too relaxed for 8 queues", n-1-int(k))
	}
}

func TestConcurrentConservation(t *testing.T) {
	const goroutines = 8
	perG := 10000
	if testing.Short() {
		perG = 2000
	}
	m := New(goroutines, 2)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]int{}
	var count atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := xrand.New(uint64(g) + 100)
			local := map[uint64]int{}
			for i := 0; i < perG; i++ {
				m.Insert(uint64(g)<<32 | uint64(i))
				if r.Intn(2) == 0 {
					if k, ok := m.ExtractMax(); ok {
						local[k]++
						count.Add(1)
					}
				}
			}
			mu.Lock()
			for k, c := range local {
				seen[k] += c
			}
			mu.Unlock()
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("concurrent multiqueue stalled")
	}
	for {
		k, ok := m.ExtractMax()
		if !ok {
			break
		}
		seen[k]++
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("saw %d distinct keys, want %d", len(seen), goroutines*perG)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d seen %d times", k, c)
		}
	}
}

func BenchmarkMixed(b *testing.B) {
	m := New(8, 2)
	for i := 0; i < 1<<16; i++ {
		m.Insert(xrand.Mix64(uint64(i)) % (1 << 20))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(uint64(b.N))
		for pb.Next() {
			if r.Intn(2) == 0 {
				m.Insert(r.Uint64() % (1 << 20))
			} else {
				m.ExtractMax()
			}
		}
	})
}

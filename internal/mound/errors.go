package mound

import "fmt"

func errNotSorted(level, slot int) error {
	return fmt.Errorf("mound: node (%d,%d) list not sorted descending", level, slot)
}

func errBadSize(level, slot int) error {
	return fmt.Errorf("mound: node (%d,%d) cached size disagrees with list", level, slot)
}

func errBadTop(level, slot int) error {
	return fmt.Errorf("mound: node (%d,%d) cached top disagrees with head", level, slot)
}

func errInvariant(level, slot int) error {
	return fmt.Errorf("mound: invariant violated at (%d,%d): parent head below child head", level, slot)
}

package mound

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/xrand"
)

func TestEmpty(t *testing.T) {
	m := New()
	if _, ok := m.ExtractMax(); ok {
		t.Fatal("extract from empty mound succeeded")
	}
	if m.Len() != 0 {
		t.Fatal("empty mound has nonzero Len")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStrictOrderSingleThread(t *testing.T) {
	m := New()
	r := xrand.New(11)
	const n = 10000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64() % 1000000
		m.Insert(keys[i])
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] > keys[j] })
	for i, w := range keys {
		got, ok := m.ExtractMax()
		if !ok {
			t.Fatalf("extract %d failed", i)
		}
		if got != w {
			t.Fatalf("extract %d = %d, want %d", i, got, w)
		}
	}
	if _, ok := m.ExtractMax(); ok {
		t.Fatal("mound not empty after draining")
	}
}

func TestDuplicates(t *testing.T) {
	m := New()
	for i := 0; i < 1000; i++ {
		m.Insert(5)
	}
	for i := 0; i < 1000; i++ {
		got, ok := m.ExtractMax()
		if !ok || got != 5 {
			t.Fatalf("extract %d = (%d,%v)", i, got, ok)
		}
	}
}

func TestDescendingInsertsDegradeToHeap(t *testing.T) {
	// §2.2: inserts ordered decreasing by value lead to lists of size 1.
	// This documents the weakness ZMSQ fixes; we assert the behaviour so a
	// regression in the baseline's faithfulness is caught.
	m := New()
	const n = 4096
	for i := n; i > 0; i-- {
		m.Insert(uint64(i))
	}
	if avg := m.AvgListLen(); avg > 1.5 {
		t.Fatalf("descending inserts should degrade lists to ~1, got avg %.2f", avg)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendingInsertsBuildLists(t *testing.T) {
	m := New()
	const n = 4096
	for i := 1; i <= n; i++ {
		m.Insert(uint64(i))
	}
	if avg := m.AvgListLen(); avg < 2 {
		t.Fatalf("ascending inserts should build long lists, got avg %.2f", avg)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHeapBehaviour(t *testing.T) {
	f := func(ops []byte, seed uint64) bool {
		m := New()
		r := xrand.New(seed)
		model := []uint64{}
		for _, op := range ops {
			if len(model) == 0 || op < 170 {
				k := r.Uint64() % 1000
				m.Insert(k)
				model = append(model, k)
				sort.Slice(model, func(i, j int) bool { return model[i] > model[j] })
			} else {
				got, ok := m.ExtractMax()
				if !ok || got != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return m.CheckInvariants() == nil && m.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentConservation(t *testing.T) {
	m := New()
	const goroutines = 8
	perG := 10000
	if testing.Short() {
		perG = 2000
	}
	var wg sync.WaitGroup
	var extracted atomic.Int64
	var mu sync.Mutex
	seen := make(map[uint64]int)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := xrand.New(uint64(g) + 7)
			local := map[uint64]int{}
			for i := 0; i < perG; i++ {
				m.Insert(uint64(g)<<32 | uint64(i))
				if r.Intn(2) == 0 {
					if k, ok := m.ExtractMax(); ok {
						local[k]++
						extracted.Add(1)
					}
				}
			}
			mu.Lock()
			for k, c := range local {
				seen[k] += c
			}
			mu.Unlock()
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("concurrent mound stalled")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for {
		k, ok := m.ExtractMax()
		if !ok {
			break
		}
		seen[k]++
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d distinct keys, want %d", len(seen), goroutines*perG)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d seen %d times", k, c)
		}
	}
}

func TestExtractNeverFailsWhenNonempty(t *testing.T) {
	m := New()
	r := xrand.New(13)
	size := 0
	for i := 0; i < 20000; i++ {
		if size == 0 || r.Intn(2) == 0 {
			m.Insert(r.Uint64() % 1000)
			size++
		} else {
			if _, ok := m.ExtractMax(); !ok {
				t.Fatalf("op %d: extract failed with %d present", i, size)
			}
			size--
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	m := New()
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(uint64(b.N))
		for pb.Next() {
			m.Insert(r.Uint64() % (1 << 20))
		}
	})
}

func BenchmarkMixed(b *testing.B) {
	m := New()
	for i := 0; i < 1<<16; i++ {
		m.Insert(xrand.Mix64(uint64(i)) % (1 << 20))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(uint64(b.N))
		for pb.Next() {
			if r.Intn(2) == 0 {
				m.Insert(r.Uint64() % (1 << 20))
			} else {
				m.ExtractMax()
			}
		}
	})
}

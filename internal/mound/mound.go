// Package mound implements the mound of Liu and Spear (§2.2 of the ZMSQ
// paper): a concurrent heap structured as a binary tree of sorted lists,
// where every parent list's head is at least as large as its children's
// heads. It is the structural ancestor of ZMSQ and the paper's strict
// baseline.
//
// Insert(k) picks a random leaf, binary-searches the leaf-to-root path for
// the node where k can become the new list head without violating the
// invariant, and pushes k there. ExtractMax pops the root's head and then
// swaps lists downward to restore the invariant. Unlike ZMSQ there is no
// forced insertion, no parent-min swap, no splitting and no extraction
// pool — which is why the mound devolves toward one-element lists (a plain
// heap) under mixed workloads, the behavior §2.2 documents and Figure 3/5
// display.
//
// This implementation uses a lock per node with the same parent-before-
// child ordering as ZMSQ, making the two directly comparable; the original
// lock-free mound's extraction also serializes at the root, which is the
// property the comparison cares about.
package mound

import (
	"sync"
	"sync/atomic"

	"repro/internal/xrand"
)

const maxLevels = 24

type node struct {
	mu   sync.Mutex
	head *lnode
	// top caches the head key (valid when size > 0) for optimistic reads.
	top  atomic.Uint64
	size atomic.Int64
	_    [24]byte
}

type lnode struct {
	key  uint64
	next *lnode
}

// Mound is a concurrent strict max-priority queue. All methods are safe
// for concurrent use.
type Mound struct {
	levels    [maxLevels][]node
	leafLevel atomic.Int32
	growMu    sync.Mutex
	rngs      sync.Pool
	seed      atomic.Uint64
}

// New returns an empty mound.
func New() *Mound {
	m := &Mound{}
	m.levels[0] = make([]node, 1)
	m.rngs.New = func() any {
		return xrand.New(xrand.Mix64(m.seed.Add(1)))
	}
	return m
}

func (m *Mound) node(level, slot int) *node { return &m.levels[level][slot] }

func (m *Mound) expand(from int) bool {
	m.growMu.Lock()
	defer m.growMu.Unlock()
	cur := int(m.leafLevel.Load())
	if cur != from {
		return true
	}
	if cur+1 >= maxLevels {
		return false
	}
	m.levels[cur+1] = make([]node, 1<<(cur+1))
	m.leafLevel.Store(int32(cur + 1))
	return true
}

// atMost reports whether the node is empty or its head key is <= key.
func (n *node) atMost(key uint64) bool {
	return n.size.Load() == 0 || n.top.Load() <= key
}

// Insert adds key to the mound.
func (m *Mound) Insert(key uint64) {
	r := m.rngs.Get().(*xrand.Rand)
	defer m.rngs.Put(r)
	for {
		level, slot, ok := m.selectLeaf(r, key)
		if !ok {
			// Depth cap: push onto the root, which always succeeds.
			root := m.node(0, 0)
			root.mu.Lock()
			m.pushLocked(root, key)
			root.mu.Unlock()
			return
		}
		lvl, slt := m.searchPath(level, slot, key)
		if m.insertAt(lvl, slt, key) {
			return
		}
	}
}

func (m *Mound) selectLeaf(r *xrand.Rand, key uint64) (int, int, bool) {
	for {
		level := int(m.leafLevel.Load())
		attempts := level
		if attempts < 1 {
			attempts = 1
		}
		for a := 0; a < attempts; a++ {
			slot := 0
			if level > 0 {
				slot = int(r.Uint64n(uint64(1) << level))
			}
			if m.node(level, slot).atMost(key) {
				return level, slot, true
			}
		}
		if !m.expand(level) {
			return 0, 0, false
		}
	}
}

func (m *Mound) searchPath(level, slot int, key uint64) (int, int) {
	lo, hi := 0, level
	for lo < hi {
		mid := (lo + hi) / 2
		if m.node(mid, slot>>uint(level-mid)).atMost(key) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, slot >> uint(level-lo)
}

// pushLocked makes key the new head of locked node n. In the mound, every
// insert is a head push: the list stays sorted descending because the
// chosen node's previous head was <= key.
func (m *Mound) pushLocked(n *node, key uint64) {
	n.head = &lnode{key: key, next: n.head}
	n.top.Store(key)
	n.size.Add(1)
}

func (m *Mound) insertAt(level, slot int, key uint64) bool {
	n := m.node(level, slot)
	if level == 0 {
		n.mu.Lock()
		if n.size.Load() > 0 && key < n.top.Load() {
			n.mu.Unlock()
			return false
		}
		m.pushLocked(n, key)
		n.mu.Unlock()
		return true
	}
	p := m.node(level-1, slot/2)
	p.mu.Lock()
	n.mu.Lock()
	if p.size.Load() == 0 || key >= p.top.Load() ||
		(n.size.Load() > 0 && key < n.top.Load()) {
		n.mu.Unlock()
		p.mu.Unlock()
		return false
	}
	p.mu.Unlock()
	m.pushLocked(n, key)
	n.mu.Unlock()
	return true
}

// ExtractMax removes and returns the largest key. ok is false only when
// the mound was observed empty at the root.
func (m *Mound) ExtractMax() (uint64, bool) {
	root := m.node(0, 0)
	root.mu.Lock()
	if root.size.Load() == 0 {
		root.mu.Unlock()
		return 0, false
	}
	key := root.head.key
	root.head = root.head.next
	root.size.Add(-1)
	if root.head != nil {
		root.top.Store(root.head.key)
	}
	m.swapDown(0, 0) // unlocks the chain
	return key, true
}

// swapDown restores the invariant from the locked node (level, slot)
// downward, exchanging whole lists with the larger child as needed.
func (m *Mound) swapDown(level, slot int) {
	n := m.node(level, slot)
	for {
		if int32(level) >= m.leafLevel.Load() {
			n.mu.Unlock()
			return
		}
		lSlot, rSlot := 2*slot, 2*slot+1
		l, r := m.node(level+1, lSlot), m.node(level+1, rSlot)
		l.mu.Lock()
		r.mu.Lock()
		c, cSlot := l, lSlot
		if r.size.Load() > 0 && (l.size.Load() == 0 || r.top.Load() > l.top.Load()) {
			c, cSlot = r, rSlot
		}
		if c.size.Load() == 0 || (n.size.Load() > 0 && n.top.Load() >= c.top.Load()) {
			r.mu.Unlock()
			l.mu.Unlock()
			n.mu.Unlock()
			return
		}
		n.head, c.head = c.head, n.head
		nt, ct := n.top.Load(), c.top.Load()
		n.top.Store(ct)
		c.top.Store(nt)
		ns, cs := n.size.Load(), c.size.Load()
		n.size.Store(cs)
		c.size.Store(ns)
		if c == l {
			r.mu.Unlock()
		} else {
			l.mu.Unlock()
		}
		n.mu.Unlock()
		n, level, slot = c, level+1, cSlot
	}
}

// Len returns a snapshot element count (exact when quiescent).
func (m *Mound) Len() int {
	var total int64
	top := int(m.leafLevel.Load())
	for l := 0; l <= top; l++ {
		nodes := m.levels[l]
		for i := range nodes {
			total += nodes[i].size.Load()
		}
	}
	return int(total)
}

// Name implements the harness's Named interface.
func (m *Mound) Name() string { return "mound" }

// AvgListLen reports the mean list length over nonempty nodes — the
// statistic §2.2 uses to show the mound devolving into a heap.
func (m *Mound) AvgListLen() float64 {
	var sum, n int64
	top := int(m.leafLevel.Load())
	for l := 0; l <= top; l++ {
		nodes := m.levels[l]
		for i := range nodes {
			if s := nodes[i].size.Load(); s > 0 {
				sum += s
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// CheckInvariants validates the mound structure; quiescent use only.
func (m *Mound) CheckInvariants() error {
	top := int(m.leafLevel.Load())
	for level := 0; level <= top; level++ {
		nodes := m.levels[level]
		for slot := range nodes {
			n := &nodes[slot]
			var cnt int64
			var prev uint64
			first := true
			for ln := n.head; ln != nil; ln = ln.next {
				if !first && ln.key > prev {
					return errNotSorted(level, slot)
				}
				prev = ln.key
				first = false
				cnt++
			}
			if cnt != n.size.Load() {
				return errBadSize(level, slot)
			}
			if cnt > 0 {
				if n.top.Load() != n.head.key {
					return errBadTop(level, slot)
				}
				if level > 0 {
					p := m.node(level-1, slot/2)
					if p.size.Load() == 0 || p.top.Load() < n.top.Load() {
						return errInvariant(level, slot)
					}
				}
			}
		}
	}
	return nil
}

// Package metrics provides the low-overhead instrumentation primitives the
// ZMSQ hot paths are threaded with: sharded counters, gauges and log2
// histograms, all allocation-free on the write path.
//
// Design (mirroring the lnode-cache discipline in internal/core): each
// metric is split into a fixed number of cache-line-padded shards. Writers
// pick a shard — the queue hashes each pooled operation context to one
// shard for its lifetime, so a goroutine's updates land on one uncontended,
// cache-hot line — and perform a single atomic add. Readers merge all
// shards on demand; reads are O(shards) and are expected to be rare
// (scrapes, snapshots), so no write-side cost is paid for read coherence.
// Merged reads are not an atomic cut across shards; under concurrency they
// are a best-effort snapshot, exactly like the queue's Len().
//
// Everything here is safe for concurrent use. The zero value of every
// metric type is ready to use.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"
)

// ShardCount is the number of independent cells per sharded metric. It is
// a power of two so shard selection is a mask, and large enough that the
// thread counts the paper evaluates rarely collide on a cell.
const ShardCount = 16

const shardMask = ShardCount - 1

// cell is one shard of a counter, padded so adjacent shards in the array
// never share a cache line.
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a sharded monotonic counter. The zero value is ready to use.
type Counter struct {
	cells [ShardCount]cell
}

// Inc adds one to the shard selected by shard (any value; it is masked).
func (c *Counter) Inc(shard uint32) {
	c.cells[shard&shardMask].n.Add(1)
}

// Add adds d to the shard selected by shard.
func (c *Counter) Add(shard uint32, d uint64) {
	c.cells[shard&shardMask].n.Add(d)
}

// Value merges all shards. Under concurrent writers the result is a
// best-effort snapshot; it is exact when writers are quiescent.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is a single instantaneous value (occupancy, level, size). Gauges
// are written from one place at a time in practice and read rarely, so
// they are a plain atomic without sharding. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of buckets in a Histogram: bucket 0 holds the
// value 0 and bucket b >= 1 holds values in [2^(b-1), 2^b). Values at or
// above 2^(HistBuckets-2) clamp into the last bucket. 26 buckets cover
// 0..2^24-1 exactly — far beyond any batch size, rank estimate or retry
// count the queue records.
const HistBuckets = 26

// histShard is one shard of a histogram. The bucket array spans several
// cache lines; the trailing pad keeps the next shard's first buckets off
// this shard's last line.
type histShard struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	_       [64 - (HistBuckets*8+16)%64]byte
}

// Histogram is a sharded log2 histogram of uint64 samples. The zero value
// is ready to use. Observe is two or three atomic adds on one shard — no
// locks, no allocation.
type Histogram struct {
	shards [ShardCount]histShard
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	b := bits.Len64(v) // v in [2^(b-1), 2^b)
	if b > HistBuckets-1 {
		return HistBuckets - 1
	}
	return b
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// BucketHigh returns the inclusive upper bound of bucket i (MaxUint64 for
// the clamping last bucket).
func BucketHigh(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= HistBuckets-1 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Observe records one sample in the shard selected by shard.
func (h *Histogram) Observe(shard uint32, v uint64) {
	s := &h.shards[shard&shardMask]
	s.buckets[bucketOf(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// Snapshot merges all shards into a read-only snapshot. It allocates (the
// bucket slice) and is meant for scrape/export paths, never hot paths.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var snap HistogramSnapshot
	var merged [HistBuckets]uint64
	for i := range h.shards {
		s := &h.shards[i]
		snap.Count += s.count.Load()
		snap.Sum += s.sum.Load()
		for b := range s.buckets {
			merged[b] += s.buckets[b].Load()
		}
	}
	for b, n := range merged {
		if n == 0 {
			continue
		}
		snap.Buckets = append(snap.Buckets, Bucket{
			Low:   BucketLow(b),
			High:  BucketHigh(b),
			Count: n,
		})
	}
	return snap
}

// Bucket is one nonempty bucket of a histogram snapshot; bounds are
// inclusive.
type Bucket struct {
	Low   uint64 `json:"low"`
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a merged, immutable view of a Histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the mean recorded sample (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket containing it; 0 when empty. Bucket granularity bounds the
// error at a factor of two — ample for trend dashboards.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		if seen+b.Count > target {
			return b.High
		}
		seen += b.Count
	}
	return s.Buckets[len(s.Buckets)-1].High
}

// Merge returns the bucket-aligned combination of s and o. Snapshots taken
// from different Histograms share the same power-of-two bucket boundaries,
// so merging is exact; the sharded front-end uses it to fold per-shard
// queue snapshots into one.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if o.Count == 0 {
		return s
	}
	if s.Count == 0 {
		return o
	}
	byLow := make(map[uint64]Bucket, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		byLow[b.Low] = b
	}
	for _, b := range o.Buckets {
		if have, ok := byLow[b.Low]; ok {
			have.Count += b.Count
			byLow[b.Low] = have
		} else {
			byLow[b.Low] = b
		}
	}
	out := HistogramSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	out.Buckets = make([]Bucket, 0, len(byLow))
	for _, b := range byLow {
		out.Buckets = append(out.Buckets, b)
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].Low < out.Buckets[j].Low })
	return out
}

// PromWriter accumulates Prometheus text-exposition output. Errors are
// sticky: the first write error is retained and later calls are no-ops, so
// call sites can emit a whole family of metrics and check Err once.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a writer emitting to w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter emits one counter sample.
func (p *PromWriter) Counter(name, help string, v uint64) {
	p.header(name, help, "counter")
	p.printf("%s %d\n", name, v)
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.printf("%s %g\n", name, v)
}

// Histogram emits a histogram snapshot in cumulative le-bucket form.
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot) {
	p.header(name, help, "histogram")
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if b.High == ^uint64(0) {
			break // folded into +Inf below
		}
		p.printf("%s_bucket{le=\"%d\"} %d\n", name, b.High, cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	p.printf("%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count)
}

// Delta turns a monotonic counter into a rate source: each Observe call
// returns the increment since the previous call (the first returns the
// full value). It is the building block for feedback controllers that
// act on recent activity rather than lifetime totals — e.g. the sharded
// front-end's elastic resize policy, which compares trylock-failure
// deltas against operation deltas between evaluations.
//
// Delta is NOT safe for concurrent use; callers serialize Observe under
// whatever exclusion already guards the controller (the sharded
// front-end uses its resize trylock).
type Delta struct {
	last uint64
}

// Observe records the counter's current value and returns the increment
// since the previous Observe.
func (d *Delta) Observe(v uint64) uint64 {
	inc := v - d.last
	d.last = v
	return inc
}

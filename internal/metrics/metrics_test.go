package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterShardingAndMerge(t *testing.T) {
	var c Counter
	for shard := uint32(0); shard < 3*ShardCount; shard++ {
		c.Inc(shard)
	}
	c.Add(7, 10)
	if got := c.Value(); got != 3*ShardCount+10 {
		t.Fatalf("Value = %d, want %d", got, 3*ShardCount+10)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(uint32(w))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("Value = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("Value = %d, want 40", got)
	}
}

func TestBucketBoundsRoundTrip(t *testing.T) {
	// Every bucket's bounds must contain exactly the values that map to it.
	for b := 0; b < HistBuckets; b++ {
		lo, hi := BucketLow(b), BucketHigh(b)
		if got := bucketOf(lo); got != b {
			t.Errorf("bucketOf(low %d) = %d, want %d", lo, got, b)
		}
		if got := bucketOf(hi); got != b {
			t.Errorf("bucketOf(high %d) = %d, want %d", hi, got, b)
		}
		if b > 0 && bucketOf(lo-1) == b {
			t.Errorf("bucket %d claims value %d below its lower bound", b, lo-1)
		}
	}
	if got := bucketOf(^uint64(0)); got != HistBuckets-1 {
		t.Errorf("max uint64 lands in bucket %d, want clamp to %d", got, HistBuckets-1)
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	samples := []uint64{0, 1, 1, 2, 3, 4, 100, 1 << 40}
	var sum uint64
	for i, v := range samples {
		h.Observe(uint32(i), v)
		sum += v
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(samples)) {
		t.Fatalf("Count = %d, want %d", snap.Count, len(samples))
	}
	if snap.Sum != sum {
		t.Fatalf("Sum = %d, want %d", snap.Sum, sum)
	}
	var fromBuckets uint64
	for _, b := range snap.Buckets {
		fromBuckets += b.Count
	}
	if fromBuckets != snap.Count {
		t.Fatalf("bucket counts sum to %d, want %d", fromBuckets, snap.Count)
	}
	if got, want := snap.Mean(), float64(sum)/float64(len(samples)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := uint64(0); i < 1000; i++ {
		h.Observe(0, i)
	}
	snap := h.Snapshot()
	// Exact values are quantized to bucket upper bounds: the median of
	// 0..999 is 499-ish, whose bucket [256,511] reports 511.
	if got := snap.Quantile(0.5); got < 256 || got > 1023 {
		t.Fatalf("p50 = %d, want within a bucket of ~500", got)
	}
	if got := snap.Quantile(1.0); got < 512 {
		t.Fatalf("p100 = %d, want >= 512", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
}

func TestPromWriterOutput(t *testing.T) {
	var h Histogram
	h.Observe(0, 3)
	h.Observe(0, 300)
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("zmsq_test_total", "a counter", 7)
	p.Gauge("zmsq_test_len", "a gauge", 3.5)
	p.Histogram("zmsq_test_hist", "a histogram", h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE zmsq_test_total counter",
		"zmsq_test_total 7",
		"# TYPE zmsq_test_len gauge",
		"zmsq_test_len 3.5",
		"# TYPE zmsq_test_hist histogram",
		`zmsq_test_hist_bucket{le="+Inf"} 2`,
		"zmsq_test_hist_sum 303",
		"zmsq_test_hist_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestPromWriterStickyError(t *testing.T) {
	p := NewPromWriter(failWriter{})
	p.Counter("x", "h", 1)
	p.Gauge("y", "h", 2)
	if p.Err() == nil {
		t.Fatal("expected sticky error")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		shard := uint32(0)
		for pb.Next() {
			c.Inc(shard)
			shard++
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		var i uint64
		for pb.Next() {
			h.Observe(uint32(i), i&1023)
			i++
		}
	})
}

// Package loadgen is the open-loop load generator for zmsqd. Open-loop
// means arrivals are scheduled by a Poisson process at the target rate,
// independent of how fast the server answers — the generator does not
// wait for a response before sending the next request, so a slowing
// server accumulates queueing delay instead of silently throttling the
// offered load. Latency is measured from each request's *scheduled*
// arrival time, not its send time: when the generator falls behind (or
// the server pushes back), that waiting is part of what a real client
// would experience and is included in the percentiles. The closed-loop
// throughput harness (internal/harness) answers "how fast can the queue
// go"; this package answers "what latency does a user see at X QPS" —
// the complementary question the paper's server-scale motivation
// actually poses.
package loadgen

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// Config parameterizes one open-loop run.
type Config struct {
	// Addr is the zmsqd address to load.
	Addr string
	// Tenants are assigned to clients round-robin (each connection sticks
	// to one tenant); at least one. Use Clients >= len(Tenants) to load
	// every tenant.
	Tenants []string
	// Clients is the number of concurrent connections. Each runs an
	// independent Poisson arrival process at TargetQPS/Clients, whose
	// superposition is a Poisson process at TargetQPS.
	Clients int
	// TargetQPS is the offered load in requests per second across all
	// clients.
	TargetQPS int
	// Ops is the total number of requests to send across all clients.
	Ops int
	// InsertPct is the percentage of requests that are inserts (the rest
	// are ExtractMax). 100 is all-insert.
	InsertPct int
	// ValueBytes, when > 0, attaches a value payload of exactly this many
	// bytes to every insert, derived deterministically from the key (see
	// ValueFor) — so any later extraction, even by a different process
	// after a server restart, can re-derive and compare the bytes.
	ValueBytes int
	// VerifyValues makes every OK extraction compare its payload against
	// ValueFor(key, ValueBytes); mismatches are counted in
	// Result.Mismatched. This is the byte-exact recovery check the
	// durability smoke test runs after restarting the server.
	VerifyValues bool
	// Seed makes the arrival schedule and key stream reproducible.
	Seed uint64
}

// ValueFor is the deterministic key→payload function valued runs use:
// n bytes generated from the key alone, so payload integrity is
// checkable without any shared state between the inserting and the
// extracting process.
func ValueFor(key uint64, n int) []byte {
	b := make([]byte, n)
	x := key
	for i := range b {
		x = xrand.Mix64(x + 0x9e3779b97f4a7c15)
		b[i] = byte(x)
	}
	return b
}

// Result summarizes one run.
type Result struct {
	// TargetQPS echoes the configured offered load.
	TargetQPS int `json:"target_qps"`
	// Clients echoes the connection count.
	Clients int `json:"clients"`
	// Sent is the number of requests put on the wire.
	Sent int `json:"sent"`
	// OK, Empty, Overloaded count the response statuses received.
	OK         int `json:"ok"`
	Empty      int `json:"empty"`
	Overloaded int `json:"overloaded"`
	// Errors counts transport/protocol failures (any is a run failure).
	Errors int `json:"errors"`
	// Verified and Mismatched count byte-exact payload checks on OK
	// extractions (VerifyValues runs only). Mismatched > 0 means the
	// server returned bytes that differ from what ValueFor says was
	// inserted for that key — a durability/aliasing bug.
	Verified   int `json:"verified,omitempty"`
	Mismatched int `json:"mismatched,omitempty"`
	// Elapsed is the wall time from first scheduled arrival to last
	// response.
	Elapsed time.Duration `json:"elapsed_ns"`
	// AchievedQPS is Sent/Elapsed — below target when the generator
	// could not keep the schedule.
	AchievedQPS float64 `json:"achieved_qps"`
	// P50/P95/P99/Max are response-latency quantiles in milliseconds,
	// measured from scheduled arrival to response (open-loop latency).
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	MaxMillis float64 `json:"max_ms"`
	// MeanMillis is the mean open-loop latency in milliseconds.
	MeanMillis float64 `json:"mean_ms"`
}

// inflight pairs a pipelined request with its scheduled arrival time.
type inflight struct {
	p         *wire.Pending
	scheduled time.Time
}

// Run drives one open-loop load test and blocks until every response is
// in (or a client dies). Latencies are recorded in microseconds into a
// log2 histogram, so quantiles are exact to a factor of two.
func Run(cfg Config) (Result, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if len(cfg.Tenants) == 0 {
		return Result{}, fmt.Errorf("loadgen: at least one tenant required")
	}
	if cfg.TargetQPS <= 0 {
		return Result{}, fmt.Errorf("loadgen: TargetQPS must be positive")
	}
	if cfg.Ops <= 0 {
		return Result{}, fmt.Errorf("loadgen: Ops must be positive")
	}

	var (
		hist    metrics.Histogram
		mu      sync.Mutex
		res     = Result{TargetQPS: cfg.TargetQPS, Clients: cfg.Clients}
		maxLat  time.Duration
		wg      sync.WaitGroup
		start   = time.Now()
		perConn = cfg.Ops / cfg.Clients
	)
	for ci := 0; ci < cfg.Clients; ci++ {
		ops := perConn
		if ci == 0 {
			ops += cfg.Ops % cfg.Clients // remainder rides on client 0
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(ci, ops int) {
			defer wg.Done()
			r := runClient(cfg, ci, ops, start, &hist)
			mu.Lock()
			res.Sent += r.Sent
			res.OK += r.OK
			res.Empty += r.Empty
			res.Overloaded += r.Overloaded
			res.Errors += r.Errors
			res.Verified += r.Verified
			res.Mismatched += r.Mismatched
			if r.maxLat > maxLat {
				maxLat = r.maxLat
			}
			mu.Unlock()
		}(ci, ops)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.AchievedQPS = float64(res.Sent) / s
	}
	hs := hist.Snapshot()
	res.P50Millis = float64(hs.Quantile(0.50)) / 1000
	res.P95Millis = float64(hs.Quantile(0.95)) / 1000
	res.P99Millis = float64(hs.Quantile(0.99)) / 1000
	res.MeanMillis = hs.Mean() / 1000
	res.MaxMillis = float64(maxLat.Microseconds()) / 1000
	return res, nil
}

// clientResult is one connection's tallies.
type clientResult struct {
	Sent, OK, Empty, Overloaded, Errors int
	Verified, Mismatched                int
	maxLat                              time.Duration
}

// runClient runs one connection's Poisson arrival process: schedule the
// next arrival, sleep until it (never past it — lateness is queueing
// delay the latency measurement must keep), pipeline the request, and
// flush when the schedule allows. A separate receiver goroutine awaits
// responses in send order and records open-loop latency.
func runClient(cfg Config, ci, ops int, start time.Time, hist *metrics.Histogram) clientResult {
	var cr clientResult
	c, err := wire.Dial(cfg.Addr)
	if err != nil {
		cr.Errors++
		return cr
	}
	defer c.Close()

	rng := xrand.New(cfg.Seed + uint64(ci)*0x9e3779b97f4a7c15)
	// Each connection belongs to one tenant, round-robin over the list —
	// like a real multi-tenant deployment, and a prerequisite for the
	// server's coalescer, which only folds consecutive same-tenant inserts.
	tenant := cfg.Tenants[ci%len(cfg.Tenants)]
	// Per-client rate; the superposition of the clients' independent
	// exponential clocks is a Poisson process at the full TargetQPS.
	lambda := float64(cfg.TargetQPS) / float64(cfg.Clients)

	pending := make(chan inflight, ops)
	recvDone := make(chan clientResult, 1)
	go func() {
		var rr clientResult
		shard := uint32(ci)
		for f := range pending {
			resp, err := f.p.Wait()
			if err != nil {
				rr.Errors++
				continue
			}
			lat := time.Since(f.scheduled)
			if lat < 0 {
				lat = 0
			}
			hist.Observe(shard, uint64(lat.Microseconds()))
			if lat > rr.maxLat {
				rr.maxLat = lat
			}
			switch resp.Status {
			case wire.StatusOK:
				rr.OK++
				if cfg.VerifyValues && resp.Op == wire.OpExtractMax {
					if bytes.Equal(resp.Payload, ValueFor(resp.Value, cfg.ValueBytes)) {
						rr.Verified++
					} else {
						rr.Mismatched++
					}
				}
			case wire.StatusEmpty:
				rr.Empty++
			case wire.StatusOverloaded:
				rr.Overloaded++
			default:
				rr.Errors++
			}
		}
		recvDone <- rr
	}()

	next := start
	for i := 0; i < ops; i++ {
		// Exponential inter-arrival: -ln(U)/λ seconds. Guard U=0.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		next = next.Add(time.Duration(-math.Log(u) / lambda * float64(time.Second)))
		onSchedule := false
		if d := time.Until(next); d > 0 {
			onSchedule = true
			time.Sleep(d)
		}
		req := wire.Request{Op: wire.OpExtractMax, Tenant: tenant}
		if int(rng.Uint64n(100)) < cfg.InsertPct {
			req = wire.Request{Op: wire.OpInsert, Tenant: tenant, Key: rng.Uint64() >> 16}
			if cfg.ValueBytes > 0 {
				req.Payload = ValueFor(req.Key, cfg.ValueBytes)
			}
		}
		p, err := c.Start(req)
		if err != nil {
			cr.Errors++
			break
		}
		cr.Sent++
		pending <- inflight{p: p, scheduled: next}
		// Flush only when the schedule gave the wire a gap: arrivals that
		// bunched up (the sender was behind schedule) stay buffered and
		// reach the server back to back, which is exactly what its
		// coalescer wants. The write buffer self-flushes when full, so an
		// unflushed backlog is bounded.
		if onSchedule || i+1 >= ops {
			if err := c.Flush(); err != nil {
				cr.Errors++
				break
			}
		}
	}
	_ = c.Flush()
	close(pending)
	rr := <-recvDone
	cr.OK = rr.OK
	cr.Empty = rr.Empty
	cr.Overloaded = rr.Overloaded
	cr.Errors += rr.Errors
	cr.Verified = rr.Verified
	cr.Mismatched = rr.Mismatched
	cr.maxLat = rr.maxLat
	return cr
}

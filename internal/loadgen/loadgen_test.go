package loadgen

import (
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/sharded"
)

// TestOpenLoopAgainstServer runs the generator against a real in-process
// zmsqd and checks conservation of responses and sane latencies.
func TestOpenLoopAgainstServer(t *testing.T) {
	s, _, err := server.New(server.Config{
		Tenants: []string{"a", "b"},
		Queue:   sharded.Config{Shards: 2, Queue: core.DefaultConfig()},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	defer func() {
		if err := s.Shutdown(); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	res, err := Run(Config{
		Addr:      ln.Addr().String(),
		Tenants:   []string{"a", "b"},
		Clients:   4,
		TargetQPS: 20000,
		Ops:       4000,
		InsertPct: 70,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("protocol errors: %d (%+v)", res.Errors, res)
	}
	if res.Sent != 4000 {
		t.Fatalf("sent %d, want 4000", res.Sent)
	}
	if res.OK+res.Empty+res.Overloaded != res.Sent {
		t.Fatalf("responses %d+%d+%d != sent %d", res.OK, res.Empty, res.Overloaded, res.Sent)
	}
	if res.OK == 0 {
		t.Fatal("no request succeeded")
	}
	if res.AchievedQPS <= 0 {
		t.Fatalf("achieved qps %.1f", res.AchievedQPS)
	}
	// Quantiles are monotone and the max bounds them all.
	if res.P50Millis > res.P95Millis || res.P95Millis > res.P99Millis {
		t.Fatalf("quantiles not monotone: %+v", res)
	}
	if res.MaxMillis < res.P50Millis/2 {
		t.Fatalf("max %.3fms below p50 %.3fms", res.MaxMillis, res.P50Millis)
	}
}

// TestRunValidation pins the config error paths.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Addr: "x", Clients: 1, TargetQPS: 1, Ops: 1}); err == nil {
		t.Fatal("missing tenants accepted")
	}
	if _, err := Run(Config{Addr: "x", Tenants: []string{"a"}, Clients: 1, Ops: 1}); err == nil {
		t.Fatal("zero qps accepted")
	}
	if _, err := Run(Config{Addr: "x", Tenants: []string{"a"}, Clients: 1, TargetQPS: 1}); err == nil {
		t.Fatal("zero ops accepted")
	}
}

// Package repro is a from-scratch Go reproduction of "A Practical,
// Scalable, Relaxed Priority Queue" (Zhou, Michael, Spear — ICPP 2019),
// the ZMSQ algorithm that ships in Facebook Folly as
// RelaxedConcurrentPriorityQueue.
//
// The root package is the public facade over internal/core: a generic
// concurrent max-priority queue with tunable relaxation.
//
//	q := repro.New[string](repro.DefaultConfig())
//	q.Insert(10, "low")
//	q.Insert(99, "high")
//	k, v, ok := q.TryExtractMax() // 99, "high", true
//
// The queue's relaxation contract: with Config.Batch = b, the true maximum
// is returned at least once in any b+1 consecutive extractions, and
// k·(b+1) extractions return the top k elements — independent of how many
// goroutines are operating. With b = 0 the queue is strict. Extraction
// never fails while the queue is nonempty; with Config.Blocking set,
// ExtractMax sleeps on an empty queue until an insert arrives or Close is
// called.
//
// For bulk workloads, InsertBatch and ExtractBatch amortize per-operation
// overhead (context acquisition, pool-slot handoff, root-lock traffic)
// across a whole batch while observing the same relaxation contract as the
// equivalent sequence of single-element calls. The steady-state hot paths
// are allocation-free: set nodes recycle through a hazard-gated freelist
// (memory-safe mode) or a sharded node cache (leaky mode), and all
// transient buffers live in pooled per-operation contexts.
//
// The repository also contains the paper's baselines (mound, SprayList,
// MultiQueue, k-LSM), the experiment harness that regenerates every table
// and figure of the evaluation (see DESIGN.md and EXPERIMENTS.md), and
// runnable examples under examples/.
package repro

import (
	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/wal"
)

// Queue is a ZMSQ relaxed concurrent priority queue holding (uint64, V)
// pairs; larger keys have higher priority. All methods are safe for
// concurrent use. See the package documentation for the relaxation
// contract.
type Queue[V any] = core.Queue[V]

// Config selects a queue variant; see DefaultConfig and the field
// documentation.
type Config = core.Config

// TreeStats is a diagnostic snapshot of the queue's internal tree shape.
type TreeStats = core.TreeStats

// Metrics is the hot-path instrumentation hook. Attach one via
// Config.Metrics (see NewMetrics) and read it through Queue.Snapshot; with
// the field nil — the default — instrumentation costs one predictable
// branch per site and the hot paths stay allocation-free either way.
type Metrics = core.Metrics

// MetricsSnapshot is a merged, point-in-time view of a queue's Metrics
// plus instantaneous gauges, produced by Queue.Snapshot. It serializes to
// JSON and renders Prometheus text via WritePrometheus.
type MetricsSnapshot = core.MetricsSnapshot

// Element is one key/value pair returned by Queue.Drain and
// Queue.CloseAndDrain.
type Element[V any] = core.Element[V]

// ErrClosed is returned by ExtractMaxContext once the queue is closed and
// fully drained; ErrEmpty is returned by ExtractMaxContext on a
// non-blocking queue observed empty.
var (
	ErrClosed = core.ErrClosed
	ErrEmpty  = core.ErrEmpty
)

// LockKind selects the per-node lock implementation (§4.1 of the paper).
type LockKind = locks.Kind

// Lock implementations: the standard library mutex, a test-and-set
// trylock, and a test-and-test-and-set trylock (the recommended default).
const (
	LockStd   LockKind = locks.Std
	LockTAS   LockKind = locks.TAS
	LockTATAS LockKind = locks.TATAS
)

// DefaultBatch and DefaultTargetLen are the paper's recommended tuning
// (§4.2).
const (
	DefaultBatch     = core.DefaultBatch
	DefaultTargetLen = core.DefaultTargetLen
)

// New returns an empty queue configured by cfg.
func New[V any](cfg Config) *Queue[V] { return core.New[V](cfg) }

// NewMetrics returns a Metrics ready to assign to Config.Metrics:
//
//	cfg := repro.DefaultConfig()
//	cfg.Metrics = repro.NewMetrics()
//	q := repro.New[string](cfg)
//	...
//	snap := q.Snapshot() // counters, histograms, gauges
func NewMetrics() *Metrics { return core.NewMetrics() }

// DefaultConfig returns the paper's recommended configuration: batch = 48,
// targetLen = 72, TATAS trylocks, hazard-pointer memory safety, blocking
// disabled.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewBlocking returns a queue with the §3.6 blocking mechanism enabled:
// ExtractMax sleeps while the queue is empty and Insert wakes sleeping
// consumers through a dispersed futex ring.
func NewBlocking[V any]() *Queue[V] {
	cfg := core.DefaultConfig()
	cfg.Blocking = true
	return core.New[V](cfg)
}

// NewStrict returns a non-relaxed queue (batch = 0): every ExtractMax
// returns the true maximum, with mound-equivalent concurrency.
func NewStrict[V any]() *Queue[V] {
	cfg := core.DefaultConfig()
	cfg.Batch = 0
	return core.New[V](cfg)
}

// DurabilityConfig asks the queue to own a write-ahead log: assign one to
// Config.Durability (with WAL set) and every insert and extract is logged
// through group-committed fsyncs. An operation is durable once a later
// Queue.SyncWAL returns nil; see DESIGN.md §10 for the protocol.
type DurabilityConfig = core.DurabilityConfig

// RecoveredState describes what Recover read back from a durability
// directory: the surviving key multiset, the snapshot watermark, and what
// a crash's torn tail cost.
type RecoveredState = wal.State

// DefaultGroupCommit is the recommended DurabilityConfig.GroupCommit
// interval.
const DefaultGroupCommit = wal.DefaultGroupCommit

// Durability configuration errors, matched with errors.Is against the
// error Config.Validate (and NewDurable) returns.
var (
	ErrDurabilityDir         = core.ErrDurabilityDir
	ErrDurabilityGroupCommit = core.ErrDurabilityGroupCommit
	ErrSnapshotWithoutWAL    = core.ErrSnapshotWithoutWAL
	ErrDurabilityConflict    = core.ErrDurabilityConflict
)

// Codec encodes element values for the write-ahead log: attach one via
// NewDurableCodec/RecoverCodec and every insert's value rides its log
// record (record format v2), recovering byte-exact after a crash.
// Without one the queue writes key-only v1 records — bit-identical to
// the pre-payload format — and recovery restores zero values.
type Codec[V any] = wal.Codec[V]

// BytesCodec is the identity Codec for Queue[[]byte].
type BytesCodec = wal.BytesCodec

// NewDurable is New for configurations with Config.Durability set,
// returning errors (invalid config, log open failure) instead of
// panicking. Call Queue.CloseWAL after the final drain. Values are not
// logged (key-only records); use NewDurableCodec to persist them.
func NewDurable[V any](cfg Config) (*Queue[V], error) { return core.NewDurable[V](cfg) }

// NewDurableCodec is NewDurable with a value codec: every insert logs
// its value's encoded bytes alongside the key, and RecoverCodec
// restores them byte-exactly.
func NewDurableCodec[V any](cfg Config, codec Codec[V]) (*Queue[V], error) {
	return core.NewDurableCodec[V](cfg, codec)
}

// Recover rebuilds a durable queue from cfg.Durability.Dir: snapshot +
// log replay restore the surviving keys (with zero V values) and the
// reopened log is attached so new operations continue the sequence. A
// directory whose records carry value payloads is rejected — use
// RecoverCodec, which can decode them.
func Recover[V any](cfg Config) (*Queue[V], *RecoveredState, error) {
	return core.Recover[V](cfg)
}

// RecoverCodec is Recover with a value codec: each recovered instance's
// logged bytes decode back into its V, so the rebuilt queue holds the
// same (key, value) pairs the crashed one had durably acknowledged.
func RecoverCodec[V any](cfg Config, codec Codec[V]) (*Queue[V], *RecoveredState, error) {
	return core.RecoverCodec[V](cfg, codec)
}

// WALExists reports whether dir holds durable queue state to Recover.
func WALExists(dir string) bool { return wal.Exists(dir) }

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark iteration executes one full experiment
// cell through internal/harness and reports the figure's headline metric
// via b.ReportMetric (Mops/s for throughput figures, hit% for Table 1,
// ns/handoff and cpu-sec for Figure 4, ms and wasted% for the SSSP
// figures).
//
// The cmd/ tools run the same experiments with the paper's full parameter
// sweeps; the benchmarks here use trimmed cells so `go test -bench=.`
// finishes in minutes. EXPERIMENTS.md records a full run next to the
// paper's numbers.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mound"
	"repro/internal/pq"
	"repro/internal/spray"
	"repro/internal/sssp"
	"repro/internal/xrand"
)

// benchThreads are the goroutine counts exercised per cell. On a large
// machine these show parallel scaling; on a small one, contention and
// oversubscription behaviour.
var benchThreads = []int{1, 4}

const benchOps = 200_000

func reportThroughput(b *testing.B, mk harness.QueueMaker, spec harness.ThroughputSpec) {
	b.Helper()
	var last harness.ThroughputResult
	for i := 0; i < b.N; i++ {
		spec.Seed = uint64(i) + 1
		last = harness.RunThroughput(mk, spec)
	}
	b.ReportMetric(last.OpsPerSec()/1e6, "Mops/s")
	b.ReportMetric(float64(last.FailedExt), "failedExtract")
}

// ---- Figure 2: lock implementations ----

func fig2Cells() []struct {
	name string
	cfg  core.Config
} {
	return []struct {
		name string
		cfg  core.Config
	}{
		{"std", core.Config{Batch: 32, TargetLen: 32, Lock: locks.Std, NoTryLock: true}},
		{"tas", core.Config{Batch: 32, TargetLen: 32, Lock: locks.TAS}},
		{"tatas", core.Config{Batch: 32, TargetLen: 32, Lock: locks.TATAS}},
	}
}

func BenchmarkFig2aLockInsertOnly(b *testing.B) {
	for _, cell := range fig2Cells() {
		for _, t := range benchThreads {
			cfg := cell.cfg
			b.Run(fmt.Sprintf("%s/threads=%d", cell.name, t), func(b *testing.B) {
				reportThroughput(b, func(int) pq.Queue { return harness.NewZMSQ(cfg) },
					harness.ThroughputSpec{Threads: t, TotalOps: benchOps, InsertPct: 100, Keys: harness.Normal20})
			})
		}
	}
}

func BenchmarkFig2bLockMixed(b *testing.B) {
	for _, cell := range fig2Cells() {
		for _, t := range benchThreads {
			cfg := cell.cfg
			b.Run(fmt.Sprintf("%s/threads=%d", cell.name, t), func(b *testing.B) {
				reportThroughput(b, func(int) pq.Queue { return harness.NewZMSQ(cfg) },
					harness.ThroughputSpec{Threads: t, TotalOps: benchOps, InsertPct: 50,
						Keys: harness.Normal20, Prefill: benchOps})
			})
		}
	}
}

// ---- Figure 3: batch and targetLen ----

func fig3Cells() []struct {
	name string
	mk   func(t int) pq.Queue
} {
	return []struct {
		name string
		mk   func(t int) pq.Queue
	}{
		{"dynamic1to1.5", func(t int) pq.Queue {
			return harness.NewZMSQ(core.Config{Batch: t, TargetLen: t * 3 / 2, Lock: locks.TATAS})
		}},
		{"static32", func(int) pq.Queue {
			return harness.NewZMSQ(core.Config{Batch: 32, TargetLen: 32, Lock: locks.TATAS})
		}},
		{"static64", func(int) pq.Queue {
			return harness.NewZMSQ(core.Config{Batch: 64, TargetLen: 64, Lock: locks.TATAS})
		}},
		{"mound", func(int) pq.Queue { return mound.New() }},
	}
}

func BenchmarkFig3aConfigInsertOnly(b *testing.B) {
	for _, cell := range fig3Cells() {
		for _, t := range benchThreads {
			cell, t := cell, t
			b.Run(fmt.Sprintf("%s/threads=%d", cell.name, t), func(b *testing.B) {
				reportThroughput(b, func(int) pq.Queue { return cell.mk(t) },
					harness.ThroughputSpec{Threads: t, TotalOps: benchOps, InsertPct: 100, Keys: harness.Normal20})
			})
		}
	}
}

func BenchmarkFig3bConfigMixed(b *testing.B) {
	for _, cell := range fig3Cells() {
		for _, t := range benchThreads {
			cell, t := cell, t
			b.Run(fmt.Sprintf("%s/threads=%d", cell.name, t), func(b *testing.B) {
				reportThroughput(b, func(int) pq.Queue { return cell.mk(t) },
					harness.ThroughputSpec{Threads: t, TotalOps: benchOps, InsertPct: 50,
						Keys: harness.Normal20, Prefill: benchOps})
			})
		}
	}
}

// ---- Table 1: accuracy ----

func reportAccuracy(b *testing.B, mk harness.QueueMaker, threads int, spec harness.AccuracySpec) {
	b.Helper()
	var last harness.AccuracyResult
	for i := 0; i < b.N; i++ {
		spec.Seed = uint64(i)*977 + 1
		last = harness.RunAccuracy(mk, threads, spec)
	}
	b.ReportMetric(100*last.HitRate(), "hit%")
}

func accuracyQueues() []struct {
	name    string
	mk      harness.QueueMaker
	threads int
} {
	cells := []struct {
		name    string
		mk      harness.QueueMaker
		threads int
	}{}
	for _, batch := range []int{8, 32, 64} {
		batch := batch
		cells = append(cells, struct {
			name    string
			mk      harness.QueueMaker
			threads int
		}{fmt.Sprintf("zmsq-batch%d", batch), func(int) pq.Queue {
			return harness.NewZMSQ(core.Config{Batch: batch, TargetLen: 64})
		}, 1})
	}
	for _, p := range []int{1, 32, 64} {
		p := p
		cells = append(cells, struct {
			name    string
			mk      harness.QueueMaker
			threads int
		}{fmt.Sprintf("spray-p%d", p), func(int) pq.Queue { return spray.New(p) }, p})
	}
	cells = append(cells, struct {
		name    string
		mk      harness.QueueMaker
		threads int
	}{"fifo", func(int) pq.Queue { return pq.NewFIFO() }, 1})
	return cells
}

func BenchmarkTable1aAccuracy1K(b *testing.B) {
	for _, cell := range accuracyQueues() {
		for _, extracts := range []int{102, 512} {
			cell, extracts := cell, extracts
			b.Run(fmt.Sprintf("%s/top%d", cell.name, extracts), func(b *testing.B) {
				reportAccuracy(b, cell.mk, cell.threads,
					harness.AccuracySpec{QueueSize: 1024, Extracts: extracts})
			})
		}
	}
}

func BenchmarkTable1bAccuracy64K(b *testing.B) {
	for _, cell := range accuracyQueues() {
		for _, extracts := range []int{65, 655, 6553} {
			cell, extracts := cell, extracts
			b.Run(fmt.Sprintf("%s/top%d", cell.name, extracts), func(b *testing.B) {
				reportAccuracy(b, cell.mk, cell.threads,
					harness.AccuracySpec{QueueSize: 65536, Extracts: extracts})
			})
		}
	}
}

// ---- Figure 4: blocking vs spinning ----

func benchHandoffZMSQ(b *testing.B, blocking bool, metric string) {
	cfg := core.DefaultConfig()
	cfg.Batch = 32
	for _, consumers := range []int{2, 8, 32} {
		consumers := consumers
		b.Run(fmt.Sprintf("consumers=%d", consumers), func(b *testing.B) {
			var last harness.HandoffResult
			for i := 0; i < b.N; i++ {
				last = harness.RunHandoffZMSQ(cfg, blocking, harness.HandoffSpec{
					Producers: 4, Consumers: consumers, TotalItems: 100_000, Seed: uint64(i) + 1,
				})
			}
			switch metric {
			case "latency":
				b.ReportMetric(float64(last.Elapsed.Nanoseconds())/float64(last.Spec.TotalItems), "ns/handoff")
				b.ReportMetric(float64(last.MeanLatency.Nanoseconds()), "meanLatencyNs")
			case "cpu":
				b.ReportMetric(last.CPUSeconds, "cpu-sec")
			}
		})
	}
}

func BenchmarkFig4aHandoffLatencySpin(b *testing.B)  { benchHandoffZMSQ(b, false, "latency") }
func BenchmarkFig4aHandoffLatencyBlock(b *testing.B) { benchHandoffZMSQ(b, true, "latency") }
func BenchmarkFig4bHandoffCPUSpin(b *testing.B)      { benchHandoffZMSQ(b, false, "cpu") }
func BenchmarkFig4bHandoffCPUBlock(b *testing.B)     { benchHandoffZMSQ(b, true, "cpu") }

// ---- Figure 5: microbenchmark comparison ----

func fig5Cells() []struct {
	name string
	mk   harness.QueueMaker
} {
	zmsq := func(mod func(*core.Config)) harness.QueueMaker {
		return func(int) pq.Queue {
			cfg := core.DefaultConfig()
			if mod != nil {
				mod(&cfg)
			}
			return harness.NewZMSQ(cfg)
		}
	}
	return []struct {
		name string
		mk   harness.QueueMaker
	}{
		{"zmsq", zmsq(nil)},
		{"zmsq-array", zmsq(func(c *core.Config) { c.ArraySet = true })},
		{"zmsq-leak", zmsq(func(c *core.Config) { c.Leaky = true })},
		{"mound", func(int) pq.Queue { return mound.New() }},
		{"spraylist", func(p int) pq.Queue { return spray.New(p) }},
	}
}

func benchFig5(b *testing.B, mix harness.Mix, keys harness.KeyDist) {
	for _, cell := range fig5Cells() {
		for _, t := range benchThreads {
			cell, t := cell, t
			b.Run(fmt.Sprintf("%s/threads=%d", cell.name, t), func(b *testing.B) {
				reportThroughput(b, cell.mk,
					harness.ThroughputSpec{Threads: t, TotalOps: benchOps, InsertPct: mix, Keys: keys})
			})
		}
	}
}

func BenchmarkFig5aInsertOnly(b *testing.B)    { benchFig5(b, 100, harness.Uniform20) }
func BenchmarkFig5bInsert66(b *testing.B)      { benchFig5(b, 66, harness.Uniform20) }
func BenchmarkFig5cMixed20bit(b *testing.B)    { benchFig5(b, 50, harness.Uniform20) }
func BenchmarkFig5cMixed7bitKeys(b *testing.B) { benchFig5(b, 50, harness.Uniform7) }

// ---- Batch API (beyond the paper) ----

// BenchmarkBatchThroughput measures the InsertBatch/ExtractBatch API on the
// Figure 5c workload (50/50 mix, prefilled, default config). batch=1 routes
// through the per-operation loop and is the baseline; larger batch sizes
// amortize per-call overhead without changing the relaxation contract.
func BenchmarkBatchThroughput(b *testing.B) {
	for _, batch := range []int{1, 16, 128} {
		for _, t := range benchThreads {
			batch, t := batch, t
			b.Run(fmt.Sprintf("batch=%d/threads=%d", batch, t), func(b *testing.B) {
				reportThroughput(b, func(int) pq.Queue { return harness.NewZMSQ(core.DefaultConfig()) },
					harness.ThroughputSpec{Threads: t, TotalOps: benchOps, InsertPct: 50,
						Keys: harness.Uniform20, Prefill: benchOps, Batch: batch})
			})
		}
	}
}

// ---- Metrics overhead (ISSUE 3) ----

// BenchmarkThroughput runs the Figure 5c-style mixed workload with
// Config.Metrics off and on. It is the measurement target of the CI
// metrics-overhead gate: cmd/metricsgate runs the same pair interleaved
// in-process and fails when enabling metrics costs more than the threshold
// (5% in CI). The instrumentation is nil-gated branches plus sharded
// atomic adds on context-private cache lines, so the two curves should be
// indistinguishable from run-to-run noise.
func BenchmarkThroughput(b *testing.B) {
	for _, mode := range []struct {
		name    string
		metrics bool
	}{
		{"metrics=off", false},
		{"metrics=on", true},
	} {
		for _, t := range benchThreads {
			mode, t := mode, t
			b.Run(fmt.Sprintf("%s/threads=%d", mode.name, t), func(b *testing.B) {
				reportThroughput(b, func(int) pq.Queue {
					cfg := core.DefaultConfig()
					if mode.metrics {
						cfg.Metrics = core.NewMetrics()
					}
					return harness.NewZMSQ(cfg)
				}, harness.ThroughputSpec{Threads: t, TotalOps: benchOps, InsertPct: 50,
					Keys: harness.Uniform20, Prefill: benchOps})
			})
		}
	}
}

// ---- Figure 6: producer/consumer ratios ----

func BenchmarkFig6ProducerConsumer(b *testing.B) {
	ratios := []struct{ p, c int }{{2, 2}, {1, 3}, {3, 1}}
	for _, qn := range []string{"zmsq", "mound", "spraylist"} {
		mk := harness.Makers()[qn]
		for _, rt := range ratios {
			qn, mk, rt := qn, mk, rt
			b.Run(fmt.Sprintf("%s/%dp%dc", qn, rt.p, rt.c), func(b *testing.B) {
				var last harness.HandoffResult
				for i := 0; i < b.N; i++ {
					last = harness.RunHandoff(mk, harness.HandoffSpec{
						Producers: rt.p, Consumers: rt.c, TotalItems: 100_000, Seed: uint64(i) + 1,
					})
				}
				b.ReportMetric(float64(last.Elapsed.Nanoseconds())/float64(last.Spec.TotalItems), "ns/item")
			})
		}
	}
}

// ---- Figures 7 and 8: SSSP ----

func benchSSSP(b *testing.B, g *graph.Graph, cells []struct {
	name string
	mk   harness.QueueMaker
}) {
	for _, cell := range cells {
		for _, t := range benchThreads {
			cell, t := cell, t
			b.Run(fmt.Sprintf("%s/workers=%d", cell.name, t), func(b *testing.B) {
				var last sssp.Result
				for i := 0; i < b.N; i++ {
					last = sssp.Run(g, 0, cell.mk(t), t)
				}
				b.ReportMetric(float64(last.Elapsed.Milliseconds()), "ms")
				b.ReportMetric(100*last.WastedFraction(), "wasted%")
			})
		}
	}
}

func fig7Cells() []struct {
	name string
	mk   harness.QueueMaker
} {
	return []struct {
		name string
		mk   harness.QueueMaker
	}{
		{"zmsq42-64", func(int) pq.Queue {
			return harness.NewZMSQ(core.Config{Batch: 42, TargetLen: 64})
		}},
		{"mound", func(int) pq.Queue { return mound.New() }},
		{"spraylist", func(p int) pq.Queue { return spray.New(p) }},
	}
}

func BenchmarkFig7SSSPPolitician(b *testing.B) {
	g := graph.Politician(1)
	benchSSSP(b, g, fig7Cells())
}

func BenchmarkFig7SSSPArtist(b *testing.B) {
	if testing.Short() {
		b.Skip("50K-node graph; skipped in short mode")
	}
	g := graph.Artist(1)
	benchSSSP(b, g, fig7Cells())
}

func BenchmarkFig8SSSPLiveJournalScaled(b *testing.B) {
	g := graph.LiveJournalScaled(14, 1) // 16K nodes; cmd/sssp runs larger scales
	cells := []struct {
		name string
		mk   harness.QueueMaker
	}{}
	for _, bt := range [][2]int{{16, 24}, {42, 64}, {96, 144}} {
		bt := bt
		cells = append(cells, struct {
			name string
			mk   harness.QueueMaker
		}{fmt.Sprintf("zmsq%d-%d", bt[0], bt[1]), func(int) pq.Queue {
			return harness.NewZMSQ(core.Config{Batch: bt[0], TargetLen: bt[1]})
		}})
	}
	cells = append(cells, fig7Cells()[1:]...)
	benchSSSP(b, g, cells)
}

// ---- §3.2: set-size stability ----

func BenchmarkSec32SetStats(b *testing.B) {
	var st core.TreeStats
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Batch = 32
		cfg.TargetLen = 32
		z := harness.NewZMSQ(cfg)
		r := xrand.New(uint64(i) + 1)
		for j := 0; j < 100_000; j++ {
			z.Insert(harness.Normal20.Draw(r))
		}
		for j := 0; j < 200_000; j++ {
			z.Insert(harness.Normal20.Draw(r))
			z.ExtractMax()
		}
		st = z.Q.Stats()
	}
	b.ReportMetric(st.NonLeafSets.Mean, "meanSetSize")
	b.ReportMetric(st.NonLeafSets.StdDev, "stddevSetSize")
}

// ---- Ablations (DESIGN.md §3) ----

func benchAblation(b *testing.B, mod func(*core.Config)) {
	for _, t := range benchThreads {
		t := t
		b.Run(fmt.Sprintf("threads=%d", t), func(b *testing.B) {
			reportThroughput(b, func(int) pq.Queue {
				cfg := core.DefaultConfig()
				mod(&cfg)
				return harness.NewZMSQ(cfg)
			}, harness.ThroughputSpec{Threads: t, TotalOps: benchOps, InsertPct: 50,
				Keys: harness.Normal20, Prefill: benchOps})
		})
	}
}

func BenchmarkAblationBaseline(b *testing.B) { benchAblation(b, func(c *core.Config) {}) }
func BenchmarkAblationNoMinSwap(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.NoMinSwap = true })
}
func BenchmarkAblationNoForcedInsert(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.NoForcedInsert = true })
}
func BenchmarkAblationNoTryLock(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.NoTryLock = true })
}
func BenchmarkAblationLeaky(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Leaky = true })
}
func BenchmarkAblationStrict(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Batch = 0 })
}

func BenchmarkAblationHelper(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Helper = true })
}

// BenchmarkOpLatency quantifies §4.2's latency claims: small targetLen
// raises per-operation latency for both inserts and extractions, and the
// array set lowers single-thread latency. Reported metrics are p99
// nanoseconds per operation type.
func BenchmarkOpLatency(b *testing.B) {
	cells := []struct {
		name string
		cfg  core.Config
	}{
		{"target8", core.Config{Batch: 8, TargetLen: 8}},
		{"target72", core.Config{Batch: 48, TargetLen: 72}},
		{"target72-array", core.Config{Batch: 48, TargetLen: 72, ArraySet: true}},
	}
	for _, cell := range cells {
		cfg := cell.cfg
		b.Run(cell.name, func(b *testing.B) {
			var last harness.LatencyResult
			for i := 0; i < b.N; i++ {
				last = harness.RunOpLatency(func(int) pq.Queue { return harness.NewZMSQ(cfg) },
					harness.ThroughputSpec{
						Threads: 1, TotalOps: 100_000, InsertPct: 50,
						Keys: harness.Normal20, Prefill: 100_000, Seed: uint64(i) + 1,
					})
			}
			b.ReportMetric(float64(last.Insert.P99.Nanoseconds()), "insP99ns")
			b.ReportMetric(float64(last.Extract.P99.Nanoseconds()), "extP99ns")
		})
	}
}

package repro_test

import (
	"fmt"
	"sync"

	"repro"
)

// The basic lifecycle: configure, insert, extract.
func ExampleNew() {
	q := repro.New[string](repro.DefaultConfig())
	q.Insert(10, "low priority")
	q.Insert(99, "high priority")

	k, v, ok := q.TryExtractMax()
	fmt.Println(k, v, ok)
	// Output: 99 high priority true
}

// Strict mode (batch = 0) is a linearizable concurrent heap: every
// extraction returns the true maximum.
func ExampleNewStrict() {
	q := repro.NewStrict[string]()
	q.Insert(2, "second")
	q.Insert(3, "first")
	q.Insert(1, "third")
	for {
		_, v, ok := q.TryExtractMax()
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// first
	// second
	// third
}

// Blocking mode: consumers sleep on an empty queue; Close releases them.
func ExampleNewBlocking() {
	q := repro.NewBlocking[int]()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			_, v, ok := q.ExtractMax() // sleeps until an insert or Close
			if !ok {
				return
			}
			fmt.Println("got", v)
		}
	}()
	q.Insert(7, 42)
	// Give the consumer its element, then shut down.
	for !q.Empty() {
	}
	q.Close()
	wg.Wait()
	// Output: got 42
}

// The accuracy/throughput trade-off is configured per queue: a small batch
// keeps extractions near-exact; batch 0 makes them exact.
func ExampleConfig() {
	cfg := repro.Config{
		Batch:     8,  // max is guaranteed at least once per 9 extractions
		TargetLen: 12, // elements per tree node
		Lock:      repro.LockTATAS,
	}
	q := repro.New[struct{}](cfg)
	for i := uint64(0); i < 100; i++ {
		q.Insert(i, struct{}{})
	}
	// The first extraction after a refill is always the true maximum.
	k, _, _ := q.TryExtractMax()
	fmt.Println(k)
	// Output: 99
}

// Quickstart: the smallest useful tour of the public API — insert,
// relaxed extraction, the strict mode, and the relaxation contract.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	// The paper's recommended configuration: batch=48, targetLen=72.
	q := repro.New[string](repro.DefaultConfig())

	jobs := map[uint64]string{
		10: "compact logs",
		55: "rebuild index",
		99: "serve paying customer",
		70: "refresh cache",
		30: "rotate keys",
	}
	for priority, name := range jobs {
		q.Insert(priority, name)
	}
	fmt.Printf("queued %d jobs\n", q.Len())

	// Relaxed extraction: each call returns a high-priority job — the true
	// maximum is guaranteed at least once per batch+1 calls, and the very
	// first extraction after a refill is exact.
	k, v, _ := q.TryExtractMax()
	fmt.Printf("first job out: %q (priority %d)\n", v, k)

	for {
		k, v, ok := q.TryExtractMax()
		if !ok {
			break
		}
		fmt.Printf("next: %q (priority %d)\n", v, k)
	}

	// Strict mode (batch = 0) behaves exactly like a concurrent heap.
	strict := repro.NewStrict[string]()
	strict.Insert(1, "last")
	strict.Insert(3, "first")
	strict.Insert(2, "middle")
	for {
		_, v, ok := strict.TryExtractMax()
		if !ok {
			break
		}
		fmt.Println("strict order:", v)
	}
}

// SSSP: parallel single-source shortest path driven by the relaxed queue —
// the paper's §4.6 application. Out-of-order extraction only costs a little
// wasted re-expansion (Dijkstra's correctness does not depend on strict
// order when distances are CAS-min updated), while extraction scalability
// improves; this example prints the trade-off directly.
//
//	go run ./examples/sssp
package main

import (
	"fmt"
	"runtime"

	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/pq"
	"repro/internal/sssp"
)

func main() {
	// A synthetic social graph shaped like the paper's "Politician"
	// dataset: 6K nodes, skewed degrees.
	g := graph.Politician(7)
	fmt.Printf("graph: %v\n", g)

	oracle := graph.Dijkstra(g, 0)
	reachable := 0
	for _, d := range oracle {
		if d != graph.Infinity {
			reachable++
		}
	}
	fmt.Printf("sequential Dijkstra: %d reachable nodes\n", reachable)

	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}

	for _, cell := range []struct {
		name string
		mk   harness.QueueMaker
	}{
		{"strict global heap", func(int) pq.Queue { return pq.NewGlobalHeap(0) }},
		{"relaxed zmsq", harness.Makers()["zmsq"]},
	} {
		res := sssp.Run(g, 0, cell.mk(workers), workers)
		correct := true
		for i := range oracle {
			if res.Dist[i] != oracle[i] {
				correct = false
				break
			}
		}
		fmt.Printf("%-20s workers=%d elapsed=%-12v wasted=%.2f%% correct=%v\n",
			cell.name, workers, res.Elapsed, 100*res.WastedFraction(), correct)
	}
	fmt.Println("the relaxed queue re-expands a few stale nodes but scales extraction;")
	fmt.Println("both produce exactly the sequential Dijkstra distances.")
}

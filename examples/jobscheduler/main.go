// Jobscheduler: the paper's motivating example (§1) — a priority scheduler
// for client-submitted jobs. High-paying customers get their SLA because
// the maximum-priority job is guaranteed out within batch+1 extractions;
// relaxation among the rest only improves throughput, since clients never
// synchronize on extraction order.
//
// Producers submit jobs with priorities by customer tier; a pool of worker
// goroutines consumes them through a BLOCKING queue, so idle workers cost
// no CPU — the practical feature (§3.6) that distinguishes ZMSQ from
// research queues.
//
//	go run ./examples/jobscheduler
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/xrand"
)

type job struct {
	id       int
	customer string
	submit   time.Time
}

func main() {
	q := repro.NewBlocking[job]()

	const (
		producers   = 3
		workers     = 6
		jobsPerProd = 2000
	)
	tiers := []struct {
		name     string
		priority uint64
	}{
		{"free", 100},
		{"standard", 1000},
		{"premium", 10000},
	}

	var started, finished sync.WaitGroup
	var byTier sync.Map // tier -> *tierStats
	for _, t := range tiers {
		byTier.Store(t.name, &tierStats{})
	}

	// Workers block on the empty queue — no spinning, no polling loop.
	var processed atomic.Int64
	for w := 0; w < workers; w++ {
		finished.Add(1)
		go func() {
			defer finished.Done()
			for {
				_, j, ok := q.ExtractMax()
				if !ok {
					return // queue closed and drained
				}
				st, _ := byTier.Load(j.customer)
				st.(*tierStats).record(time.Since(j.submit))
				processed.Add(1)
			}
		}()
	}

	// Producers submit a mixed stream, mostly low-tier with occasional
	// premium jobs whose latency we care about.
	for p := 0; p < producers; p++ {
		started.Add(1)
		go func(p int) {
			defer started.Done()
			r := xrand.New(uint64(p) + 1)
			for i := 0; i < jobsPerProd; i++ {
				tier := tiers[0]
				switch {
				case r.Intn(100) < 5:
					tier = tiers[2] // 5% premium
				case r.Intn(100) < 30:
					tier = tiers[1]
				}
				// Tie-break within a tier by recency so priorities are
				// unique-ish and the queue keeps FIFO-like behaviour
				// inside a tier.
				prio := tier.priority + uint64(i)%97
				q.Insert(prio, job{id: p*jobsPerProd + i, customer: tier.name, submit: time.Now()})
				if i%64 == 0 {
					time.Sleep(time.Microsecond) // bursty, not saturating
				}
			}
		}(p)
	}

	started.Wait()
	// Let workers drain, then close to release the blocked ones.
	for processed.Load() < int64(producers*jobsPerProd) {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	finished.Wait()

	fmt.Printf("processed %d jobs with %d workers\n", processed.Load(), workers)
	for _, t := range tiers {
		st, _ := byTier.Load(t.name)
		fmt.Printf("%-9s %s\n", t.name, st.(*tierStats))
	}
	fmt.Println("premium jobs consistently beat lower tiers to the workers,")
	fmt.Println("while idle workers slept instead of spinning.")
}

type tierStats struct {
	mu    sync.Mutex
	n     int
	total time.Duration
	max   time.Duration
}

func (s *tierStats) record(d time.Duration) {
	s.mu.Lock()
	s.n++
	s.total += d
	if d > s.max {
		s.max = d
	}
	s.mu.Unlock()
}

func (s *tierStats) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return "no jobs"
	}
	return fmt.Sprintf("jobs=%-5d meanWait=%-12v maxWait=%v", s.n, s.total/time.Duration(s.n), s.max)
}

// Tuning: an interactive-feeling explorer for the accuracy/throughput
// trade-off governed by batch and targetLen (§4.2, §4.3, §4.7). It prints
// what a user tuning ZMSQ for their application would want to see: for a
// grid of configurations, single-run throughput on a mixed workload next
// to extraction accuracy on a prefilled queue.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pq"
)

func main() {
	threads := runtime.GOMAXPROCS(0)
	if threads > 8 {
		threads = 8
	}
	fmt.Printf("# batch/targetLen sweep at %d threads (paper default: 48/72)\n", threads)
	fmt.Printf("%-18s %-12s %-14s\n", "config", "Mops/s", "top-10%-hit")

	for _, bt := range [][2]int{
		{4, 6}, {8, 12}, {16, 24}, {32, 48}, {48, 72}, {64, 96},
	} {
		batch, target := bt[0], bt[1]
		mk := func(int) pq.Queue {
			return harness.NewZMSQ(core.Config{Batch: batch, TargetLen: target})
		}
		thr := harness.RunThroughput(mk, harness.ThroughputSpec{
			Threads: threads, TotalOps: 400_000, InsertPct: 50,
			Keys: harness.Uniform20, Prefill: 100_000, Seed: 9,
		})
		acc := harness.RunAccuracy(mk, 1, harness.AccuracySpec{
			QueueSize: 10_000, Extracts: 1_000, Seed: 11,
		})
		fmt.Printf("zmsq(%3d,%3d)      %-12.3f %.1f%%\n",
			batch, target, thr.OpsPerSec()/1e6, 100*acc.HitRate())
	}
	fmt.Println("\nlarger batches relieve root contention (throughput up) and cost")
	fmt.Println("accuracy only gradually — the knob the paper's §4.7 tuning explores.")
}

// Eventsim: a discrete-event simulation driven by the priority queue —
// the canonical application where relaxation is NOT acceptable. A DES must
// process events in nondecreasing timestamp order or causality breaks, so
// it needs the strict queue (batch = 0); running the same simulation on a
// relaxed queue quantifies how many causality violations the relaxation
// would inject. This example is the counterpoint to examples/sssp, where
// out-of-order processing merely wastes a little work.
//
// The model is a small open queueing network: jobs arrive at a dispatcher,
// visit one of three service stations (exponential-ish service times), and
// leave. We measure the event order violations under each queue mode.
//
//	go run ./examples/eventsim
package main

import (
	"fmt"

	"repro"
	"repro/internal/xrand"
)

type event struct {
	time    uint64 // simulation time in microseconds
	station int
	kind    string
}

// key inverts the timestamp: a DES wants the EARLIEST event, and the queue
// returns the largest key.
func key(t uint64) uint64 { return ^t }

func run(cfg repro.Config, label string) {
	q := repro.New[event](cfg)
	r := xrand.New(42)

	// Seed arrivals.
	const jobs = 20000
	t := uint64(0)
	for i := 0; i < jobs; i++ {
		t += 1 + r.Uint64n(50) // interarrival
		q.Insert(key(t), event{time: t, kind: "arrival"})
	}

	var (
		processed  int
		inversions int // event earlier than the immediately preceding one
		stale      int // event earlier than the latest time already seen
		prevTime   uint64
		highTime   uint64
		maxSkew    uint64
		busyUntil  [3]uint64
	)
	for {
		_, ev, ok := q.TryExtractMax()
		if !ok {
			break
		}
		processed++
		if ev.time < prevTime {
			inversions++
		}
		prevTime = ev.time
		if ev.time < highTime {
			stale++
			if skew := highTime - ev.time; skew > maxSkew {
				maxSkew = skew
			}
		} else {
			highTime = ev.time
		}
		switch ev.kind {
		case "arrival":
			// Dispatch to the least-loaded station; service completes
			// after a random service time.
			st := 0
			for s := 1; s < 3; s++ {
				if busyUntil[s] < busyUntil[st] {
					st = s
				}
			}
			start := ev.time
			if busyUntil[st] > start {
				start = busyUntil[st]
			}
			done := start + 10 + r.Uint64n(120)
			busyUntil[st] = done
			q.Insert(key(done), event{time: done, station: st, kind: "departure"})
		case "departure":
			// Job leaves the system.
		}
	}
	fmt.Printf("%-22s events=%-6d inversions=%-6d stale=%-6d worst skew=%dµs\n",
		label, processed, inversions, stale, maxSkew)
}

func main() {
	cfgStrict := repro.DefaultConfig()
	cfgStrict.Batch = 0
	run(cfgStrict, "strict (batch=0)")

	for _, batch := range []int{8, 48} {
		cfg := repro.DefaultConfig()
		cfg.Batch = batch
		run(cfg, fmt.Sprintf("relaxed (batch=%d)", batch))
	}

	fmt.Println("\na DES needs the strict queue: batch=0 yields zero out-of-order events,")
	fmt.Println("while relaxation reorders them — and DES is also a worst-case input for")
	fmt.Println("relaxed queues (§3.7's input-pattern discussion): timestamps arrive in")
	fmt.Println("monotone order, the pattern that thins upper tree sets. Relax only when,")
	fmt.Println("as in SSSP or job scheduling, out-of-order consumption is benign.")
}
